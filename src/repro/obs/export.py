"""Exporters: Chrome/Perfetto ``trace_event`` JSON, flat JSONL, HTML report.

The Chrome exporter emits the JSON object format — ``{"traceEvents": [...]}``
— with complete (``"X"``) spans, instant (``"i"``) events and one final
``"C"`` counter sample per merged counter, timestamps rebased to the
earliest event and expressed in microseconds as the format requires.  The
output loads directly in ``chrome://tracing`` and https://ui.perfetto.dev.

:func:`validate_trace_events` is the schema check the CI smoke job and the
``repro-trace`` CLI run over exported files: it returns a list of problems
(empty == valid) instead of raising, so callers can render all of them.
"""

from __future__ import annotations

import html
import json
from pathlib import Path

from .telemetry import TelemetryReport

#: Phases accepted by the trace_event validator (the subset we emit plus the
#: begin/end/metadata phases other tools commonly produce).
VALID_PHASES = {"X", "B", "E", "i", "I", "C", "M"}


def _rebase_us(ts: float, epoch: float) -> float:
    return round(1e6 * (ts - epoch), 3)


def to_trace_events(report: TelemetryReport) -> dict:
    """The report as a Chrome ``trace_event`` JSON-object payload."""
    epoch = min((event["ts"] for event in report.events), default=0.0)
    last_us = 0.0
    trace_events: list[dict] = []
    pids = sorted({event["pid"] for event in report.events}) or [0]
    for pid in pids:
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": pid,
                "args": {"name": f"{report.engine} worker {pid}"},
            }
        )
    for event in report.events:
        ts_us = _rebase_us(event["ts"], epoch)
        entry = {
            "name": event["name"],
            "cat": event["cat"] or report.engine,
            "ph": event["ph"],
            "ts": ts_us,
            "pid": event["pid"],
            "tid": event["pid"],
        }
        if event["ph"] == "X":
            entry["dur"] = round(1e6 * event["dur"], 3)
            last_us = max(last_us, ts_us + entry["dur"])
        else:
            entry["s"] = "p"
            last_us = max(last_us, ts_us)
        if event["args"]:
            entry["args"] = dict(event["args"])
        trace_events.append(entry)
    for name in sorted(report.counters):
        trace_events.append(
            {
                "name": name,
                "ph": "C",
                "ts": last_us,
                "pid": pids[0],
                "tid": pids[0],
                "args": {name: report.counters[name]},
            }
        )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "metadata": {"repro": report.summary()},
    }


def write_trace_json(path: "str | Path", report: TelemetryReport) -> Path:
    """Write the Chrome ``trace_event`` JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_trace_events(report), indent=1), encoding="utf-8")
    return path


def to_jsonl(report: TelemetryReport) -> str:
    """Flat JSONL: one summary line, then one line per counter and event."""
    lines = [json.dumps({"kind": "summary", **report.summary()})]
    for name in sorted(report.counters):
        lines.append(
            json.dumps({"kind": "counter", "name": name, "value": report.counters[name]})
        )
    for event in report.events:
        lines.append(json.dumps({"kind": "event", **event}))
    return "\n".join(lines) + "\n"


def write_jsonl(path: "str | Path", report: TelemetryReport) -> Path:
    """Write the flat JSONL dump; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_jsonl(report), encoding="utf-8")
    return path


def to_html(report: TelemetryReport) -> str:
    """A self-contained HTML rendering of the campaign report."""
    summary_rows = "\n".join(
        f"<tr><th>{html.escape(str(key))}</th><td>{html.escape(json.dumps(value))}</td></tr>"
        for key, value in report.summary().items()
    )
    counter_rows = "\n".join(
        f"<tr><td>{html.escape(name)}</td><td>{report.counters[name]:g}</td></tr>"
        for name in sorted(report.counters)
    )
    span_rows = "\n".join(
        f"<tr><td>{html.escape(name)}</td><td>{int(stats['count'])}</td>"
        f"<td>{stats['total']:.3f}</td><td>{1e3 * stats['mean']:.2f}</td></tr>"
        for name, stats in report.span_stats().items()
    )
    truncation = ""
    if report.dropped:
        truncation = (
            f"<p><strong>WARNING — telemetry truncated:</strong> the tracer "
            f"dropped {report.dropped} event(s) at its buffer cap; span "
            f"tallies are partial. Raise <code>max_events</code> to capture "
            f"everything.</p>"
        )
    return f"""<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>Telemetry — {html.escape(report.engine)}</title>
<style>
body {{ font-family: system-ui, sans-serif; margin: 2rem; color: #1a1a2e; }}
table {{ border-collapse: collapse; margin: 1rem 0; }}
th, td {{ border: 1px solid #ccd; padding: 0.3rem 0.7rem; text-align: left; }}
th {{ background: #eef; }}
</style>
</head>
<body>
<h1>Telemetry — {html.escape(report.engine)}</h1>
{truncation}
<h2>Summary</h2>
<table>{summary_rows}</table>
<h2>Counters</h2>
<table><tr><th>counter</th><th>value</th></tr>{counter_rows}</table>
<h2>Spans</h2>
<table><tr><th>span</th><th>count</th><th>total s</th><th>mean ms</th></tr>{span_rows}</table>
</body>
</html>
"""


def write_html(path: "str | Path", report: TelemetryReport) -> Path:
    """Write the HTML campaign report; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_html(report), encoding="utf-8")
    return path


# -- re-import -------------------------------------------------------------------------
def report_from_trace(payload: object) -> TelemetryReport:
    """Rebuild a :class:`TelemetryReport` from an exported trace payload.

    The inverse of :func:`to_trace_events`, up to what the format keeps:
    event timestamps come back rebased (relative seconds), per-scenario
    latencies are gone (only their percentiles were exported, inside the
    summary), and the headline numbers are recovered from the
    ``metadata.repro`` summary block when present.  This is what lets
    ``repro-report`` render a span timeline from a trace *file* long after
    the campaign process is gone.
    """
    events: list = []
    metadata: dict = {}
    if isinstance(payload, dict):
        events = payload.get("traceEvents") or []
        meta = payload.get("metadata")
        if isinstance(meta, dict) and isinstance(meta.get("repro"), dict):
            metadata = meta["repro"]
    elif isinstance(payload, list):
        events = payload
    counters: dict[str, float] = {}
    normalized: list[dict] = []
    for event in events:
        if not isinstance(event, dict):
            continue
        phase = event.get("ph")
        if phase == "C":
            for name, value in (event.get("args") or {}).items():
                counters[name] = float(value)
            continue
        if phase not in ("X", "i", "I"):
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            continue
        normalized.append(
            {
                "ph": "i" if phase == "I" else phase,
                "name": str(event.get("name", "")),
                "cat": str(event.get("cat", "")),
                "ts": float(ts) / 1e6,
                "dur": float(event.get("dur", 0.0)) / 1e6,
                "args": event.get("args") if isinstance(event.get("args"), dict) else None,
                "pid": int(event["pid"]) if isinstance(event.get("pid"), int) else 0,
            }
        )
    normalized.sort(key=lambda event: event["ts"])
    report = TelemetryReport(
        engine=str(metadata.get("engine", "trace")),
        scenarios=int(metadata.get("scenarios", 0)),
        executed=int(metadata.get("executed", 0)),
        loaded=int(metadata.get("loaded", 0)),
        wall=float(metadata.get("wall_seconds", 0.0)),
        workers=int(metadata.get("workers", 1)),
        counters=counters,
        events=normalized,
        dropped=int(metadata.get("dropped_events", 0)),
    )
    return report


def report_from_jsonl(text: str) -> TelemetryReport:
    """Rebuild a :class:`TelemetryReport` from a :func:`to_jsonl` dump."""
    summary: dict = {}
    counters: dict[str, float] = {}
    events: list[dict] = []
    for line in text.splitlines():
        if not line.strip():
            continue
        entry = json.loads(line)
        kind = entry.get("kind")
        if kind == "summary":
            summary = entry
        elif kind == "counter":
            counters[str(entry["name"])] = float(entry["value"])
        elif kind == "event":
            events.append(
                {
                    "ph": entry.get("ph", "i"),
                    "name": str(entry.get("name", "")),
                    "cat": str(entry.get("cat", "")),
                    "ts": float(entry.get("ts", 0.0)),
                    "dur": float(entry.get("dur", 0.0)),
                    "args": entry.get("args"),
                    "pid": int(entry.get("pid", 0)),
                }
            )
    events.sort(key=lambda event: event["ts"])
    return TelemetryReport(
        engine=str(summary.get("engine", "trace")),
        scenarios=int(summary.get("scenarios", 0)),
        executed=int(summary.get("executed", 0)),
        loaded=int(summary.get("loaded", 0)),
        wall=float(summary.get("wall_seconds", 0.0)),
        workers=int(summary.get("workers", 1)),
        counters=counters,
        events=events,
        dropped=int(summary.get("dropped_events", 0)),
    )


# -- validation ------------------------------------------------------------------------
def validate_trace_events(payload: object) -> list[str]:
    """Check a parsed JSON payload against the ``trace_event`` object format.

    Returns human-readable problems; an empty list means the payload is a
    valid Chrome trace.  Both the JSON-object form (``{"traceEvents": []}``)
    and the bare JSON-array form are accepted, mirroring what Chrome loads.
    """
    problems: list[str] = []
    if isinstance(payload, dict):
        events = payload.get("traceEvents")
        if not isinstance(events, list):
            return ["top-level object has no 'traceEvents' array"]
    elif isinstance(payload, list):
        events = payload
    else:
        return ["payload is neither a trace object nor an event array"]
    for index, event in enumerate(events):
        where = f"event[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: missing/empty 'name'")
        phase = event.get("ph")
        if phase not in VALID_PHASES:
            problems.append(f"{where}: invalid phase {phase!r}")
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: 'ts' must be a non-negative number, got {ts!r}")
        for key in ("pid", "tid"):
            if key in event and not isinstance(event[key], int):
                problems.append(f"{where}: '{key}' must be an integer")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: complete event needs non-negative 'dur'")
        if phase == "C" and not isinstance(event.get("args"), dict):
            problems.append(f"{where}: counter event needs an 'args' object")
        if "args" in event and event["args"] is not None and not isinstance(event["args"], dict):
            problems.append(f"{where}: 'args' must be an object")
    return problems


def counters_from_trace(payload: dict) -> dict[str, float]:
    """Recover the final counter values from an exported trace payload."""
    counters: dict[str, float] = {}
    events = payload.get("traceEvents", payload) if isinstance(payload, dict) else payload
    for event in events:
        if isinstance(event, dict) and event.get("ph") == "C":
            for name, value in (event.get("args") or {}).items():
                counters[name] = float(value)
    return counters
