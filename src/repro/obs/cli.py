"""``repro-trace`` — inspect, validate and convert exported trace files.

Reads a Chrome ``trace_event`` JSON file produced by the ``--trace`` flag of
``repro-bench`` / ``repro-faults`` (or any tool emitting the format) and:

- prints a summary (event counts by phase, top spans, counters),
- ``--validate`` checks the payload against the trace_event schema
  (exit code 2 on problems) — what the CI ``obs-smoke`` job runs,
- ``--expect-counter NAME=VALUE`` asserts a merged counter's final value
  (exit code 1 on mismatch) — how CI reconciles event and scenario counts,
- ``--jsonl OUT`` re-exports the events as flat JSONL for line-based tools.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .export import counters_from_trace, validate_trace_events


def _iter_events(payload: object) -> list[dict]:
    if isinstance(payload, dict):
        events = payload.get("traceEvents", [])
    elif isinstance(payload, list):
        events = payload
    else:
        events = []
    return [event for event in events if isinstance(event, dict)]


def _span_stats(events: list[dict]) -> dict[str, dict[str, float]]:
    totals: dict[str, list[float]] = {}
    for event in events:
        if event.get("ph") == "X" and isinstance(event.get("dur"), (int, float)):
            totals.setdefault(str(event.get("name")), []).append(float(event["dur"]))
    stats = {
        name: {
            "count": len(durations),
            "total_us": sum(durations),
            "mean_us": sum(durations) / len(durations),
        }
        for name, durations in totals.items()
    }
    return dict(sorted(stats.items(), key=lambda item: -item[1]["total_us"]))


def _parse_expectation(text: str) -> tuple[str, float]:
    name, _, value = text.partition("=")
    if not name or not value:
        raise argparse.ArgumentTypeError(
            f"expected NAME=VALUE, got {text!r}"
        )
    try:
        return name, float(value)
    except ValueError as error:
        raise argparse.ArgumentTypeError(f"bad counter value in {text!r}") from error


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Inspect, validate and convert repro trace_event files.",
    )
    parser.add_argument("trace", type=Path, help="trace_event JSON file to read")
    parser.add_argument(
        "--validate",
        action="store_true",
        help="check the file against the trace_event schema (exit 2 on problems)",
    )
    parser.add_argument(
        "--expect-counter",
        action="append",
        type=_parse_expectation,
        default=[],
        metavar="NAME=VALUE",
        help="assert a counter's final value (repeatable; exit 1 on mismatch)",
    )
    parser.add_argument(
        "--jsonl", type=Path, default=None, metavar="OUT", help="re-export events as JSONL"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the summary (checks still run)"
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        payload = json.loads(args.trace.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        print(f"repro-trace: cannot read {args.trace}: {error}", file=sys.stderr)
        return 2

    events = _iter_events(payload)
    counters = counters_from_trace(payload)

    if not args.quiet:
        phases: dict[str, int] = {}
        for event in events:
            phase = str(event.get("ph"))
            phases[phase] = phases.get(phase, 0) + 1
        print(f"{args.trace}: {len(events)} events")
        for phase in sorted(phases):
            print(f"  ph {phase}: {phases[phase]}")
        spans = _span_stats(events)
        if spans:
            print("top spans (by total time):")
            for name, stats in list(spans.items())[:10]:
                print(
                    f"  {name}: n={stats['count']} total={stats['total_us'] / 1e6:.3f}s "
                    f"mean={stats['mean_us'] / 1e3:.2f}ms"
                )
        if counters:
            print("counters:")
            for name in sorted(counters):
                print(f"  {name} = {counters[name]:g}")
        summary = payload.get("metadata", {}).get("repro") if isinstance(payload, dict) else None
        if summary:
            print("campaign summary:")
            for key, value in summary.items():
                print(f"  {key} = {value}")

    if args.jsonl is not None:
        with args.jsonl.open("w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event) + "\n")
        if not args.quiet:
            print(f"wrote {len(events)} events to {args.jsonl}")

    status = 0
    if args.validate:
        problems = validate_trace_events(payload)
        if problems:
            for problem in problems:
                print(f"INVALID: {problem}", file=sys.stderr)
            status = 2
        elif not args.quiet:
            print("trace_event schema: OK")

    for name, expected in args.expect_counter:
        actual = counters.get(name)
        if actual is None or abs(actual - expected) > 1e-9:
            print(
                f"COUNTER MISMATCH: {name} expected {expected:g}, got "
                f"{'missing' if actual is None else f'{actual:g}'}",
                file=sys.stderr,
            )
            status = max(status, 1)
        elif not args.quiet:
            print(f"counter {name} = {actual:g}: OK")

    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
