"""Live, throttled progress for long campaigns.

A :class:`ProgressReporter` renders one carriage-return line on stderr —
``platform scenarios  12/48  25.0%  3.1/s  ETA 11.6s`` — updated at most
every ``min_interval`` seconds so a thousand fast scenarios cost a handful
of writes.  The batch engines drive it from whichever execution path ran:
the serial fallback advances per scenario, the multiprocessing path per
completed chunk.

``enabled=None`` auto-detects: progress shows only when the stream is a
terminal, so piped CI logs stay clean without every caller threading a
flag.  ``--quiet`` in the CLIs forces it off.
"""

from __future__ import annotations

import sys
import time


class ProgressReporter:
    """Throttled ``done/total`` line with rate and ETA on a stream."""

    def __init__(
        self,
        total: int,
        label: str = "scenarios",
        *,
        stream=None,
        enabled: "bool | None" = None,
        min_interval: float = 0.2,
    ) -> None:
        self.total = int(total)
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        if enabled is None:
            enabled = bool(getattr(self.stream, "isatty", lambda: False)())
        self.enabled = bool(enabled) and self.total > 0
        self.min_interval = float(min_interval)
        self.done = 0
        self._start = time.perf_counter()
        self._last_render = 0.0
        self._rendered = False

    @property
    def active(self) -> bool:
        """Whether this reporter will ever write anything."""
        return self.enabled

    def advance(self, count: int = 1) -> None:
        """Record ``count`` finished scenarios and re-render if due."""
        self.done += int(count)
        if not self.enabled:
            return
        now = time.perf_counter()
        if self.done < self.total and now - self._last_render < self.min_interval:
            return
        self._render(now)

    def _render(self, now: float) -> None:
        elapsed = max(now - self._start, 1e-9)
        rate = self.done / elapsed
        if 0 < self.done < self.total and rate > 0:
            eta = f"ETA {(self.total - self.done) / rate:.1f}s"
        else:
            eta = f"{elapsed:.1f}s"
        percent = 100.0 * self.done / self.total if self.total else 100.0
        line = (
            f"\r{self.label}  {self.done}/{self.total}  {percent:5.1f}%  "
            f"{rate:.1f}/s  {eta}"
        )
        self.stream.write(line.ljust(64))
        self.stream.flush()
        self._last_render = now
        self._rendered = True

    def finish(self) -> None:
        """Render the final state and terminate the progress line."""
        if not self.enabled:
            return
        self._render(time.perf_counter())
        if self._rendered:
            self.stream.write("\n")
            self.stream.flush()
