"""Netlist extraction: from a parsed Verilog-AMS module to a :class:`Circuit`.

The acquisition step of the abstraction methodology (paper Section IV.A)
"retrieves information concerning the topology of the electrical network"
from the set of dipole equations.  This module performs that retrieval: it
maps every contribution statement of a conservative analog block onto a typed
network component connected between two nodes, producing a
:class:`repro.network.circuit.Circuit` whose dipole equations are exactly the
parsed contribution statements (with parameters substituted).

Input ports of the module become independent voltage sources driven by
external stimuli of the same name — the analog input signals ``U`` of the
paper's problem statement.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import EvaluationError, VamsError
from ..expr.ast import (
    BinaryOp,
    Constant,
    Derivative,
    Expr,
    Integral,
    UnaryOp,
    Variable,
    substitute,
    transform,
)
from ..expr.equation import DIPOLE, Equation
from ..expr.evaluate import evaluate
from ..expr.simplify import constant_value, simplify
from ..network.circuit import Circuit
from ..network.components import (
    VCCS,
    VCVS,
    Capacitor,
    CurrentSource,
    Inductor,
    Resistor,
    VoltageSource,
)
from .ast import (
    FLOW,
    INPUT,
    POTENTIAL,
    AccessRef,
    AnalogStatement,
    Block,
    Contribution,
    IfStatement,
    VamsModule,
)
from .classify import classify_module

DEFAULT_GROUND_NAMES = ("gnd", "ground", "vss", "0")


class NetlistError(VamsError):
    """A contribution statement could not be mapped onto a network component."""


@dataclass
class ResolvedBranch:
    """A contribution target resolved to a pair of nodes and a branch name."""

    name: str
    positive: str
    negative: str


def find_ground(module: VamsModule) -> str:
    """Return the name of the reference node of ``module``.

    Explicit ``ground`` declarations win; otherwise a conventionally named net
    (``gnd``, ``ground``, ``vss``) is used; otherwise a ``gnd`` node is
    implied (single-argument access functions reference it implicitly).
    """
    if module.grounds:
        return sorted(module.grounds)[0]
    nets = {name.lower(): name for name in module.electrical_nets()}
    for candidate in DEFAULT_GROUND_NAMES:
        if candidate in nets:
            return nets[candidate]
    for port in module.ports:
        if port.name.lower() in DEFAULT_GROUND_NAMES:
            return port.name
    return "gnd"


class NetlistBuilder:
    """Builds a :class:`Circuit` from a conservative Verilog-AMS module."""

    def __init__(
        self, module: VamsModule, overrides: "dict[str, float] | None" = None
    ) -> None:
        self.module = module
        self.ground = find_ground(module)
        self.parameters = module.parameter_values()
        if overrides:
            unknown = set(overrides) - set(self.parameters)
            if unknown:
                raise NetlistError(
                    f"module {module.name!r} declares no parameter called "
                    f"{', '.join(sorted(unknown))}"
                )
            self.parameters.update(overrides)
        self.circuit = Circuit(module.name, ground=self.ground)
        self._anonymous_count = 0

    # -- public API ----------------------------------------------------------------
    def build(self, drive_inputs: bool = True) -> Circuit:
        """Build the circuit; optionally add stimulus sources on input ports."""
        classification = classify_module(self.module)
        if not classification.is_conservative:
            raise NetlistError(
                f"module {self.module.name!r} is a signal-flow description; "
                "use repro.core.signalflow to convert it directly"
            )
        if drive_inputs:
            self._add_input_sources()
        for contribution in self.active_contributions():
            self._add_component(contribution)
        self.circuit.validate()
        return self.circuit

    def active_contributions(self) -> list[Contribution]:
        """Contribution statements with parameter-constant conditionals folded.

        ``if``/``else`` statements whose conditions only involve parameters
        (and literals) select a single active arm at elaboration time —
        exactly one topology is built per parameter point, so a conditional
        gain stage contributes one component, not both alternatives.
        Conditions that do not fold to a constant (they read ``V``/``I``
        quantities or undeclared names) are rejected: a conservative network
        has no state-dependent topology.
        """
        contributions: list[Contribution] = []
        self._collect_active(self.module.analog, contributions)
        return contributions

    def _collect_active(
        self, statements: list[AnalogStatement], into: list[Contribution]
    ) -> None:
        for statement in statements:
            if isinstance(statement, Block):
                self._collect_active(statement.statements, into)
            elif isinstance(statement, IfStatement):
                arm = (
                    statement.then_branch
                    if self._fold_condition(statement.condition)
                    else statement.else_branch
                )
                self._collect_active(arm, into)
            elif isinstance(statement, Contribution):
                into.append(statement)

    def _fold_condition(self, condition: Expr) -> bool:
        try:
            value = evaluate(condition, self.parameters)
        except EvaluationError as exc:
            raise NetlistError(
                f"the conditional {condition} of module {self.module.name!r} "
                f"does not fold to a constant under its parameters ({exc}); "
                "conservative conditionals may only test parameters"
            ) from exc
        return value != 0.0

    # -- helpers --------------------------------------------------------------------
    def _add_input_sources(self) -> None:
        for port in self.module.ports:
            if port.direction != INPUT:
                continue
            if port.name == self.ground:
                continue
            self.circuit.add_voltage_source(
                port.name,
                self.ground,
                input_signal=port.name,
                name=f"Vsrc_{port.name}",
            )

    def _resolve_target(self, access: AccessRef) -> ResolvedBranch:
        if access.branch is not None:
            declared = self.module.branch_by_name(access.branch)
            if declared is not None:
                return ResolvedBranch(declared.name, declared.positive, declared.negative)
        positive = access.positive
        negative = access.negative
        if positive is None:
            raise NetlistError("contribution target without a net")
        if negative is None:
            negative = self.ground
        self._anonymous_count += 1
        name = f"b{self._anonymous_count}_{positive}_{negative}"
        return ResolvedBranch(name, positive, negative)

    def _substitute_names(self, expression: Expr, branch: ResolvedBranch) -> Expr:
        """Substitute parameters and normalise access-function variable names."""
        mapping = {name: Constant(value) for name, value in self.parameters.items()}
        expression = substitute(expression, mapping)

        def visit(node: Expr) -> Expr:
            if isinstance(node, Variable):
                return self._normalise_variable(node, branch)
            return node

        return simplify(transform(expression, visit))

    def _normalise_variable(self, node: Variable, branch: ResolvedBranch) -> Expr:
        name = node.name
        if name.startswith("V(") or name.startswith("I("):
            kind = name[0]
            arguments = name[2:-1].split(",")
            arguments = [argument.strip() for argument in arguments]
            if kind == "V":
                return self._normalise_potential(arguments, branch)
            return self._normalise_flow(arguments, branch)
        return node

    def _normalise_potential(self, arguments: list[str], branch: ResolvedBranch) -> Expr:
        if len(arguments) == 1:
            name = arguments[0]
            declared = self.module.branch_by_name(name)
            if declared is not None:
                return self._potential_difference(declared.positive, declared.negative)
            return self._potential_difference(name, self.ground)
        positive, negative = arguments
        return self._potential_difference(positive, negative)

    def _potential_difference(self, positive: str, negative: str) -> Expr:
        def potential(net: str) -> Expr:
            if net == self.ground:
                return Constant(0.0)
            return Variable(f"V({net})")

        return simplify(BinaryOp("-", potential(positive), potential(negative)))

    def _normalise_flow(self, arguments: list[str], branch: ResolvedBranch) -> Expr:
        if len(arguments) == 1:
            name = arguments[0]
            declared = self.module.branch_by_name(name)
            if declared is not None:
                return Variable(f"I({declared.name})")
            # Flow through the branch currently being defined.
            return Variable(f"I({branch.name})")
        positive, negative = arguments
        if branch.positive == positive and branch.negative == negative:
            return Variable(f"I({branch.name})")
        raise NetlistError(
            f"cannot resolve flow access I({positive},{negative}); declare a "
            "named branch for it"
        )

    # -- component recognition ---------------------------------------------------------
    def _add_component(self, contribution: Contribution) -> None:
        branch = self._resolve_target(contribution.target)
        expression = self._substitute_names(contribution.expression, branch)
        kind = contribution.target.kind
        component = self._match_component(kind, branch, expression)
        self.circuit.add(component, branch.positive, branch.negative, name=branch.name)

    def _match_component(self, kind: str, branch: ResolvedBranch, expression: Expr):
        own_current = f"I({branch.name})"
        own_voltage = self._potential_difference(branch.positive, branch.negative)

        factor_of_current = _linear_factor(expression, own_current)
        factor_of_ddt_voltage = _derivative_factor(expression, own_voltage)
        factor_of_ddt_current = _derivative_factor(expression, Variable(own_current))
        factor_of_idt_current = _integral_factor(expression, Variable(own_current))
        factor_of_idt_voltage = _integral_factor(expression, own_voltage)
        value = constant_value(expression)

        if kind == POTENTIAL:
            if factor_of_current is not None:
                return Resistor(factor_of_current)
            if factor_of_ddt_current is not None:
                return Inductor(factor_of_ddt_current)
            if factor_of_idt_current is not None and factor_of_idt_current > 0.0:
                # V = (1/C) * idt(I): the integral form of the capacitor law.
                return Capacitor(1.0 / factor_of_idt_current)
            if value is not None:
                return VoltageSource(dc_value=value)
            if _is_input_reference(expression, self.module):
                return VoltageSource(input_signal=_input_name(expression))
            gain, control = _controlled_source(expression)
            if gain is not None:
                return VCVS(gain, control_positive=control[0], control_negative=control[1])
            raise NetlistError(
                f"cannot recognise the potential contribution on branch "
                f"{branch.name!r}: {expression}"
            )

        if kind == FLOW:
            if factor_of_ddt_voltage is not None:
                return Capacitor(factor_of_ddt_voltage)
            if factor_of_idt_voltage is not None and factor_of_idt_voltage > 0.0:
                # I = (1/L) * idt(V): the integral form of the inductor law.
                return Inductor(1.0 / factor_of_idt_voltage)
            conductance = _conductance_factor(expression, own_voltage)
            if conductance is not None:
                return Resistor(1.0 / conductance)
            if value is not None:
                return CurrentSource(dc_value=value)
            if _is_input_reference(expression, self.module):
                return CurrentSource(input_signal=_input_name(expression))
            gain, control = _controlled_source(expression)
            if gain is not None:
                return VCCS(gain, control_positive=control[0], control_negative=control[1])
            raise NetlistError(
                f"cannot recognise the flow contribution on branch "
                f"{branch.name!r}: {expression}"
            )
        raise NetlistError(f"unknown access kind {kind!r}")


# -- expression pattern helpers --------------------------------------------------------
def _linear_factor(expression: Expr, variable_name: str) -> float | None:
    """Return ``k`` when ``expression == k * Variable(variable_name)``."""
    from ..expr.linear import linear_form

    try:
        form = linear_form(expression, {variable_name})
    except Exception:  # pragma: no cover - non-linear contribution
        return None
    remainder = constant_value(form.remainder)
    if remainder not in (0.0,):
        return None
    coefficient = constant_value(form.coefficient(variable_name))
    if coefficient is None or coefficient == 0.0:
        return None
    return coefficient


def _derivative_factor(expression: Expr, operand: Expr) -> float | None:
    """Return ``k`` when ``expression == k * ddt(operand)`` (up to sign/shape)."""
    return _operator_factor(expression, operand, Derivative)


def _integral_factor(expression: Expr, operand: Expr) -> float | None:
    """Return ``k`` when ``expression == k * idt(operand)`` with zero initial value."""
    return _operator_factor(expression, operand, Integral)


def _operator_factor(expression: Expr, operand: Expr, node_type: type) -> float | None:
    """Match ``k * op(operand)`` where scaling may be ``k*x``, ``x*k``, ``x/k`` or ``-x``."""
    expression = simplify(expression)
    if isinstance(expression, node_type):
        if node_type is Integral and not _zero_initial(expression):
            return None
        if simplify(expression.operand) == simplify(operand):
            return 1.0
        return None
    if isinstance(expression, UnaryOp) and expression.op == "-":
        inner = _operator_factor(expression.operand, operand, node_type)
        return None if inner is None else -inner
    if isinstance(expression, BinaryOp) and expression.op == "*":
        left_value = constant_value(expression.lhs)
        right_value = constant_value(expression.rhs)
        if left_value is not None:
            inner = _operator_factor(expression.rhs, operand, node_type)
            return None if inner is None else left_value * inner
        if right_value is not None:
            inner = _operator_factor(expression.lhs, operand, node_type)
            return None if inner is None else right_value * inner
    if isinstance(expression, BinaryOp) and expression.op == "/":
        divisor = constant_value(expression.rhs)
        if divisor not in (None, 0.0):
            inner = _operator_factor(expression.lhs, operand, node_type)
            return None if inner is None else inner / divisor
    return None


def _zero_initial(integral: Integral) -> bool:
    """True when the ``idt`` call carries no (or an explicitly zero) initial value."""
    if integral.initial is None:
        return True
    return constant_value(simplify(integral.initial)) == 0.0


def _conductance_factor(expression: Expr, own_voltage: Expr) -> float | None:
    """Return ``g`` when ``expression == g * (V(p) - V(n))`` of the same branch."""
    voltage_variables = own_voltage.variables()
    if not voltage_variables:
        return None
    from ..expr.linear import linear_form

    try:
        form = linear_form(expression, voltage_variables)
    except Exception:  # pragma: no cover - non-linear contribution
        return None
    if constant_value(form.remainder) != 0.0:
        return None
    own_form = linear_form(own_voltage, voltage_variables)
    factors: set[float] = set()
    for name in voltage_variables:
        own_coefficient = constant_value(own_form.coefficient(name))
        coefficient = constant_value(form.coefficient(name))
        if own_coefficient in (None, 0.0) or coefficient is None:
            return None
        factors.add(coefficient / own_coefficient)
    if len(factors) == 1:
        factor = factors.pop()
        return factor if factor != 0.0 else None
    return None


def _is_input_reference(expression: Expr, module: VamsModule) -> bool:
    if not isinstance(expression, Variable):
        return False
    port = module.port(expression.name)
    return port is not None and port.direction == INPUT


def _input_name(expression: Expr) -> str:
    assert isinstance(expression, Variable)
    return expression.name


def _controlled_source(expression: Expr) -> tuple[float | None, tuple[str, str]]:
    """Match ``k * (V(a) - V(b))`` (or ``k * V(a)``) and return gain and nodes."""
    expression = simplify(expression)
    sign = 1.0
    if isinstance(expression, UnaryOp) and expression.op == "-":
        sign = -1.0
        expression = expression.operand
    if not (isinstance(expression, BinaryOp) and expression.op == "*"):
        # A bare potential difference is a unit-gain controlled source.
        nodes = _potential_nodes(expression)
        if nodes is not None:
            return sign, nodes
        return None, ("", "")
    left_value = constant_value(expression.lhs)
    right_value = constant_value(expression.rhs)
    if left_value is not None:
        nodes = _potential_nodes(expression.rhs)
        if nodes is not None:
            return sign * left_value, nodes
    if right_value is not None:
        nodes = _potential_nodes(expression.lhs)
        if nodes is not None:
            return sign * right_value, nodes
    return None, ("", "")


def _potential_nodes(expression: Expr) -> tuple[str, str] | None:
    """Extract ``(positive, negative)`` from ``V(a) - V(b)``, ``V(a)`` or ``-V(b)``."""
    expression = simplify(expression)
    if isinstance(expression, Variable) and expression.name.startswith("V("):
        return expression.name[2:-1], "gnd"
    if isinstance(expression, UnaryOp) and expression.op == "-":
        inner = _potential_nodes(expression.operand)
        if inner is not None:
            return inner[1], inner[0]
        return None
    if isinstance(expression, BinaryOp) and expression.op == "-":
        left = expression.lhs
        right = expression.rhs
        left_name = left.name[2:-1] if isinstance(left, Variable) and left.name.startswith("V(") else None
        right_name = right.name[2:-1] if isinstance(right, Variable) and right.name.startswith("V(") else None
        if left_name and right_name:
            return left_name, right_name
        if left_name and constant_value(right) == 0.0:
            return left_name, "gnd"
        if right_name and constant_value(left) == 0.0:
            return "gnd", right_name
    return None


def to_circuit(
    module: VamsModule,
    drive_inputs: bool = True,
    overrides: "dict[str, float] | None" = None,
) -> Circuit:
    """Convert a conservative Verilog-AMS module into a typed circuit netlist.

    ``overrides`` re-elaborates the module with different ``parameter real``
    values (sweeps and fault campaigns over parsed netlists rely on this);
    names absent from the module raise :class:`NetlistError`.
    """
    return NetlistBuilder(module, overrides=overrides).build(drive_inputs=drive_inputs)


def extract_dipole_equations(module: VamsModule) -> list[Equation]:
    """Return the contribution statements as normalised dipole equations.

    Each equation is expressed over node potentials ``V(node)`` and branch
    flows ``I(branch)``, with parameters substituted by their values.  This is
    the exact input format of the acquisition step.
    """
    builder = NetlistBuilder(module)
    equations: list[Equation] = []
    for contribution in builder.active_contributions():
        branch = builder._resolve_target(contribution.target)
        rhs = builder._substitute_names(contribution.expression, branch)
        if contribution.target.kind == POTENTIAL:
            lhs = builder._potential_difference(branch.positive, branch.negative)
        else:
            lhs = Variable(f"I({branch.name})")
        equations.append(Equation(lhs, rhs, kind=DIPOLE, name=f"dipole:{branch.name}"))
    return equations
