"""Abstract syntax tree of the Verilog-AMS analog subset.

The tree produced by :mod:`repro.vams.parser` mirrors the structure the paper
works with (Figure 2): a module made of *declarations* (ports, disciplines,
parameters, named branches), and an *analog block* containing contribution
statements, assignments and conditionals whose expressions are
:class:`repro.expr.ast.Expr` trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..expr.ast import Expr

#: Port directions.
INPUT = "input"
OUTPUT = "output"
INOUT = "inout"
DIRECTIONS = (INPUT, OUTPUT, INOUT)

#: Access function kinds.
POTENTIAL = "V"
FLOW = "I"


@dataclass
class Port:
    """A module port with its direction and (optional) discipline.

    ``line``/``column`` are the 1-based source position of the name in the
    declaration (0 when the node was built programmatically).
    """

    name: str
    direction: str = INOUT
    discipline: str | None = None
    line: int = 0
    column: int = 0


@dataclass
class Parameter:
    """A ``parameter real`` declaration with its default value.

    ``uses`` records the names the default expression referenced before it
    was folded to a constant (``parameter real tau = R * C;`` uses ``R`` and
    ``C``) — the linter needs them for unused-parameter analysis.
    """

    name: str
    value: float
    kind: str = "real"
    line: int = 0
    column: int = 0
    uses: tuple[str, ...] = ()


@dataclass
class BranchDeclaration:
    """A named branch declared with ``branch (p, n) name;``."""

    name: str
    positive: str
    negative: str
    line: int = 0
    column: int = 0


@dataclass
class AccessRef:
    """A reference to an access function target: ``V(a)``, ``V(a,b)`` or ``I(br)``.

    ``positive``/``negative`` are net names; when the access uses a named
    branch, ``branch`` holds its name instead.
    """

    kind: str  # POTENTIAL or FLOW
    positive: str | None = None
    negative: str | None = None
    branch: str | None = None
    line: int = 0
    column: int = 0

    def canonical_name(self) -> str:
        """Return the canonical variable name used by the expression engine."""
        if self.branch is not None:
            return f"{self.kind}({self.branch})"
        if self.negative is not None:
            return f"{self.kind}({self.positive},{self.negative})"
        return f"{self.kind}({self.positive})"


# -- analog statements -----------------------------------------------------------
@dataclass
class AnalogStatement:
    """Base class of the statements allowed inside an analog block."""


@dataclass
class Contribution(AnalogStatement):
    """A contribution statement ``target <+ expression;``."""

    target: AccessRef
    expression: Expr
    line: int = 0
    column: int = 0


@dataclass
class Assignment(AnalogStatement):
    """A procedural assignment ``name = expression;`` to a real variable."""

    name: str
    expression: Expr
    line: int = 0
    column: int = 0


@dataclass
class IfStatement(AnalogStatement):
    """An ``if``/``else`` statement with lists of statements in each branch."""

    condition: Expr
    then_branch: list[AnalogStatement] = field(default_factory=list)
    else_branch: list[AnalogStatement] = field(default_factory=list)
    line: int = 0
    column: int = 0


@dataclass
class Block(AnalogStatement):
    """A ``begin ... end`` sequence of statements."""

    statements: list[AnalogStatement] = field(default_factory=list)


# -- module ------------------------------------------------------------------------
@dataclass
class VamsModule:
    """A parsed Verilog-AMS module."""

    name: str
    ports: list[Port] = field(default_factory=list)
    parameters: list[Parameter] = field(default_factory=list)
    disciplines: dict[str, str] = field(default_factory=dict)
    grounds: set[str] = field(default_factory=set)
    branches: list[BranchDeclaration] = field(default_factory=list)
    real_variables: list[str] = field(default_factory=list)
    analog: list[AnalogStatement] = field(default_factory=list)
    #: 1-based (line, column) of each declared name — nets, real variables and
    #: grounds — keyed by name.  Populated by the parser; empty for modules
    #: built programmatically.  Used by the linter for positioned diagnostics.
    declaration_positions: dict[str, tuple[int, int]] = field(default_factory=dict)

    # -- convenience queries -------------------------------------------------------
    def port_names(self) -> list[str]:
        """Names of the module ports in declaration order."""
        return [port.name for port in self.ports]

    def port(self, name: str) -> Port | None:
        """Return the port called ``name`` (or ``None``)."""
        for port in self.ports:
            if port.name == name:
                return port
        return None

    def parameter_values(self) -> dict[str, float]:
        """Return parameter default values keyed by name."""
        return {parameter.name: parameter.value for parameter in self.parameters}

    def branch_by_name(self, name: str) -> BranchDeclaration | None:
        """Return the declared branch called ``name`` (or ``None``)."""
        for branch in self.branches:
            if branch.name == name:
                return branch
        return None

    def electrical_nets(self) -> list[str]:
        """Names of every net declared with the ``electrical`` discipline."""
        return [name for name, discipline in self.disciplines.items() if discipline == "electrical"]

    def iter_statements(self) -> Iterator[AnalogStatement]:
        """Yield every analog statement, flattening blocks and conditionals."""

        def walk(statements: list[AnalogStatement]) -> Iterator[AnalogStatement]:
            for statement in statements:
                yield statement
                if isinstance(statement, Block):
                    yield from walk(statement.statements)
                elif isinstance(statement, IfStatement):
                    yield from walk(statement.then_branch)
                    yield from walk(statement.else_branch)

        yield from walk(self.analog)

    def contributions(self) -> list[Contribution]:
        """Return every contribution statement in the analog block."""
        return [
            statement
            for statement in self.iter_statements()
            if isinstance(statement, Contribution)
        ]
