"""Classification of analog descriptions into the paper's block kinds.

Section III of the paper observes that analog descriptions consist of
*declarations*, *signal-flow* representations and *conservative*
representations (blocks a, b and c of Figure 2), and that conversion must be
handled differently for the last two.  This module decides, for a parsed
module (or an individual contribution), which category it falls into.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..expr.ast import Access
from .ast import FLOW, Contribution, VamsModule

#: Model categories.
SIGNAL_FLOW = "signal_flow"
CONSERVATIVE = "conservative"
MIXED = "mixed"


def _references_flow(contribution: Contribution) -> bool:
    """True when the statement reads or drives a flow (current) quantity.

    Flow *reads* are detected structurally, via the :class:`~repro.expr.ast.Access`
    nodes the parser builds for access-function references — not by matching
    the rendered variable name, which would be confused by spacing in the
    source (``I (br)``) or by ordinary identifiers that merely start with
    ``I(``-like prefixes.
    """
    if contribution.target.kind == FLOW:
        return True
    return any(
        isinstance(node, Access) and node.kind == FLOW
        for node in contribution.expression.walk()
    )


def classify_contribution(contribution: Contribution) -> str:
    """Classify a single contribution statement.

    A statement participates in a conservative description when it drives or
    reads a flow quantity (the energy-conservation laws then matter for the
    solution); otherwise it is a pure signal-flow relation between potentials.
    """
    return CONSERVATIVE if _references_flow(contribution) else SIGNAL_FLOW


@dataclass
class Classification:
    """Outcome of classifying a module's analog block."""

    category: str
    conservative_statements: list[Contribution]
    signal_flow_statements: list[Contribution]
    uses_branches: bool

    @property
    def is_conservative(self) -> bool:
        """True when the model needs the abstraction methodology (Section IV)."""
        return self.category in (CONSERVATIVE, MIXED)

    @property
    def is_signal_flow(self) -> bool:
        """True when the model can be converted directly (Section III.A)."""
        return self.category == SIGNAL_FLOW


def classify_module(module: VamsModule) -> Classification:
    """Classify the analog block of ``module``.

    The category is ``conservative`` when every contribution involves flow
    quantities, ``signal_flow`` when none does, and ``mixed`` otherwise.  A
    module that declares named branches is treated as conservative even if no
    statement reads a current, because the declared topology implies energy
    conservation constraints between its branches.
    """
    contributions = module.contributions()
    conservative = [c for c in contributions if classify_contribution(c) == CONSERVATIVE]
    signal_flow = [c for c in contributions if classify_contribution(c) == SIGNAL_FLOW]
    uses_branches = bool(module.branches)

    if conservative and signal_flow:
        category = MIXED
    elif conservative:
        category = CONSERVATIVE
    elif uses_branches and contributions:
        category = CONSERVATIVE
    else:
        category = SIGNAL_FLOW
    return Classification(category, conservative, signal_flow, uses_branches)
