"""Recursive-descent parser for the Verilog-AMS analog subset.

The parser covers the constructs the paper relies on (Figure 2 and Section
III): module headers with ports, discipline and ground declarations,
``parameter real`` declarations, named branches, local ``real`` variables and
an analog block made of contribution statements (``<+``), procedural
assignments and ``if``/``else`` conditionals.  Expressions are parsed directly
into :mod:`repro.expr` trees, with access functions (``V``/``I``) becoming
variables named canonically (``V(a,b)``, ``I(br)``) and the analog operators
``ddt``/``idt`` becoming :class:`~repro.expr.ast.Derivative` /
:class:`~repro.expr.ast.Integral` nodes.
"""

from __future__ import annotations

from ..errors import VamsParseError
from ..expr.ast import (
    KNOWN_FUNCTIONS,
    Access,
    BinaryOp,
    Call,
    Conditional,
    Constant,
    Derivative,
    Expr,
    Integral,
    UnaryOp,
    Variable,
)
from .ast import (
    INOUT,
    AccessRef,
    Assignment,
    Block,
    BranchDeclaration,
    Contribution,
    IfStatement,
    Parameter,
    Port,
    VamsModule,
)
from .lexer import (
    EOF,
    IDENT,
    KEYWORD,
    NUMBER,
    OPERATOR,
    PUNCT,
    SYSTEM_IDENT,
    Token,
    parse_number,
    tokenize,
)

#: System functions accepted inside analog expressions; they become plain
#: variables that the simulation environment binds (e.g. the current time).
SYSTEM_FUNCTIONS = ("$abstime", "$temperature", "$vt", "$realtime")

_ACCESS_FUNCTIONS = ("V", "I")


class Parser:
    """Token-stream parser producing :class:`~repro.vams.ast.VamsModule` trees."""

    def __init__(self, source: str) -> None:
        self._tokens = tokenize(source)
        self._position = 0

    # -- token helpers -------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        index = min(self._position + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._position]
        if token.kind != EOF:
            self._position += 1
        return token

    def _check(self, kind: str, value: str | None = None) -> bool:
        token = self._peek()
        if token.kind != kind:
            return False
        return value is None or token.value == value

    def _accept(self, kind: str, value: str | None = None) -> Token | None:
        if self._check(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: str, value: str | None = None) -> Token:
        token = self._peek()
        if not self._check(kind, value):
            expected = value if value is not None else kind
            raise VamsParseError(
                f"expected {expected!r} but found {token.value!r}",
                token.line,
                token.column,
            )
        return self._advance()

    def _error(self, message: str) -> VamsParseError:
        token = self._peek()
        return VamsParseError(message, token.line, token.column)

    # -- top level -----------------------------------------------------------------
    def parse(self) -> list[VamsModule]:
        """Parse every module in the source."""
        modules: list[VamsModule] = []
        while not self._check(EOF):
            modules.append(self.parse_module())
        if not modules:
            raise VamsParseError("no module found in the source")
        return modules

    def parse_module(self) -> VamsModule:
        """Parse a single ``module ... endmodule`` definition."""
        self._expect(KEYWORD, "module")
        name = self._expect(IDENT).value
        module = VamsModule(name)
        if self._accept(PUNCT, "("):
            if not self._check(PUNCT, ")"):
                while True:
                    port_token = self._expect(IDENT)
                    module.ports.append(
                        Port(
                            port_token.value,
                            INOUT,
                            line=port_token.line,
                            column=port_token.column,
                        )
                    )
                    if not self._accept(PUNCT, ","):
                        break
            self._expect(PUNCT, ")")
        self._expect(PUNCT, ";")
        while not self._check(KEYWORD, "endmodule"):
            if self._check(EOF):
                raise self._error(f"missing 'endmodule' for module {name!r}")
            self._parse_module_item(module)
        self._expect(KEYWORD, "endmodule")
        return module

    # -- module items ----------------------------------------------------------------
    def _parse_module_item(self, module: VamsModule) -> None:
        token = self._peek()
        if token.kind == KEYWORD and token.value in ("input", "output", "inout"):
            self._parse_direction_declaration(module)
        elif token.kind == KEYWORD and token.value in ("electrical", "voltage", "current", "wire"):
            self._parse_discipline_declaration(module)
        elif token.kind == KEYWORD and token.value == "ground":
            self._parse_ground_declaration(module)
        elif token.kind == KEYWORD and token.value == "parameter":
            self._parse_parameter_declaration(module)
        elif token.kind == KEYWORD and token.value in ("real", "integer"):
            self._parse_variable_declaration(module)
        elif token.kind == KEYWORD and token.value == "branch":
            self._parse_branch_declaration(module)
        elif token.kind == KEYWORD and token.value == "analog":
            self._parse_analog_block(module)
        else:
            raise self._error(f"unexpected token {token.value!r} in module body")

    def _parse_direction_declaration(self, module: VamsModule) -> None:
        direction = self._advance().value
        discipline: str | None = None
        if self._check(KEYWORD) and self._peek().value in ("electrical", "voltage", "current", "wire"):
            discipline = self._advance().value
        tokens = self._parse_identifier_tokens()
        self._expect(PUNCT, ";")
        for token in tokens:
            name = token.value
            self._record_position(module, token)
            port = module.port(name)
            if port is None:
                port = Port(name, line=token.line, column=token.column)
                module.ports.append(port)
            port.direction = direction
            if discipline is not None:
                port.discipline = discipline
                module.disciplines[name] = discipline

    def _parse_discipline_declaration(self, module: VamsModule) -> None:
        discipline = self._advance().value
        tokens = self._parse_identifier_tokens()
        self._expect(PUNCT, ";")
        for token in tokens:
            name = token.value
            self._record_position(module, token)
            module.disciplines[name] = discipline
            port = module.port(name)
            if port is not None:
                port.discipline = discipline

    def _parse_ground_declaration(self, module: VamsModule) -> None:
        self._advance()
        tokens = self._parse_identifier_tokens()
        self._expect(PUNCT, ";")
        for token in tokens:
            self._record_position(module, token)
            module.grounds.add(token.value)

    def _parse_parameter_declaration(self, module: VamsModule) -> None:
        self._advance()
        kind = "real"
        if self._check(KEYWORD) and self._peek().value in ("real", "integer"):
            kind = self._advance().value
        name_token = self._expect(IDENT)
        self._expect(OPERATOR, "=")
        value_expr = self.parse_expression()
        self._expect(PUNCT, ";")
        value = _fold_constant(value_expr, module)
        module.parameters.append(
            Parameter(
                name_token.value,
                value,
                kind,
                line=name_token.line,
                column=name_token.column,
                uses=tuple(sorted(value_expr.variables())),
            )
        )

    def _parse_variable_declaration(self, module: VamsModule) -> None:
        self._advance()
        tokens = self._parse_identifier_tokens()
        self._expect(PUNCT, ";")
        for token in tokens:
            self._record_position(module, token)
            module.real_variables.append(token.value)

    def _parse_branch_declaration(self, module: VamsModule) -> None:
        self._advance()
        self._expect(PUNCT, "(")
        positive = self._expect(IDENT).value
        self._expect(PUNCT, ",")
        negative = self._expect(IDENT).value
        self._expect(PUNCT, ")")
        tokens = self._parse_identifier_tokens()
        self._expect(PUNCT, ";")
        for token in tokens:
            module.branches.append(
                BranchDeclaration(
                    token.value,
                    positive,
                    negative,
                    line=token.line,
                    column=token.column,
                )
            )

    def _parse_identifier_list(self) -> list[str]:
        return [token.value for token in self._parse_identifier_tokens()]

    def _parse_identifier_tokens(self) -> list[Token]:
        tokens = [self._expect(IDENT)]
        while self._accept(PUNCT, ","):
            tokens.append(self._expect(IDENT))
        return tokens

    @staticmethod
    def _record_position(module: VamsModule, token: Token) -> None:
        """Remember where a name was first declared (for lint diagnostics)."""
        module.declaration_positions.setdefault(
            token.value, (token.line, token.column)
        )

    # -- analog block ------------------------------------------------------------------
    def _parse_analog_block(self, module: VamsModule) -> None:
        self._expect(KEYWORD, "analog")
        statement = self._parse_statement()
        if isinstance(statement, Block):
            module.analog.extend(statement.statements)
        else:
            module.analog.append(statement)

    def _parse_statement(self):
        if self._accept(KEYWORD, "begin"):
            block = Block()
            while not self._check(KEYWORD, "end"):
                if self._check(EOF):
                    raise self._error("missing 'end' in analog block")
                block.statements.append(self._parse_statement())
            self._expect(KEYWORD, "end")
            return block
        if_token = self._accept(KEYWORD, "if")
        if if_token is not None:
            self._expect(PUNCT, "(")
            condition = self.parse_expression()
            self._expect(PUNCT, ")")
            then_statement = self._parse_statement()
            else_statements: list = []
            if self._accept(KEYWORD, "else"):
                else_statement = self._parse_statement()
                else_statements = _as_statement_list(else_statement)
            return IfStatement(
                condition,
                _as_statement_list(then_statement),
                else_statements,
                line=if_token.line,
                column=if_token.column,
            )
        return self._parse_simple_statement()

    def _parse_simple_statement(self):
        token = self._peek()
        if token.kind == IDENT and token.value in _ACCESS_FUNCTIONS and self._peek(1).value == "(":
            access = self._parse_access_reference()
            if self._accept(OPERATOR, "<+"):
                expression = self.parse_expression()
                self._expect(PUNCT, ";")
                return Contribution(
                    access, expression, line=access.line, column=access.column
                )
            raise self._error("expected the contribution operator '<+'")
        if token.kind == IDENT and self._peek(1).value == "(":
            # An identifier called like an access function but spelled wrong
            # (``Q(a,b) <+ ...``): name the real problem instead of a generic
            # unexpected-token complaint.
            raise VamsParseError(
                f"unknown access function {token.value!r} in contribution "
                f"target; expected one of {', '.join(_ACCESS_FUNCTIONS)}",
                token.line,
                token.column,
            )
        if token.kind == IDENT and self._peek(1).value == "=":
            name_token = self._advance()
            self._expect(OPERATOR, "=")
            expression = self.parse_expression()
            self._expect(PUNCT, ";")
            return Assignment(
                name_token.value,
                expression,
                line=name_token.line,
                column=name_token.column,
            )
        raise self._error(f"unexpected token {token.value!r} in analog statement")

    def _parse_access_reference(self) -> AccessRef:
        kind_token = self._expect(IDENT)
        kind = kind_token.value
        self._expect(PUNCT, "(")
        first = self._expect(IDENT).value
        second: str | None = None
        if self._accept(PUNCT, ","):
            second = self._expect(IDENT).value
        self._expect(PUNCT, ")")
        if second is None:
            # A single argument can be either a net (implicit reference to
            # ground) or a declared branch; the distinction is resolved by the
            # netlist extraction, which knows the declarations.  The raw name
            # is kept in ``positive`` and, redundantly, in ``branch``.
            return AccessRef(
                kind,
                positive=first,
                branch=first,
                line=kind_token.line,
                column=kind_token.column,
            )
        return AccessRef(
            kind,
            positive=first,
            negative=second,
            line=kind_token.line,
            column=kind_token.column,
        )

    # -- expressions -----------------------------------------------------------------
    def parse_expression(self) -> Expr:
        """Parse a full (conditional) expression."""
        condition = self._parse_logical_or()
        if self._accept(OPERATOR, "?"):
            then_value = self.parse_expression()
            self._expect(OPERATOR, ":")
            else_value = self.parse_expression()
            return Conditional(condition, then_value, else_value)
        return condition

    def _parse_logical_or(self) -> Expr:
        left = self._parse_logical_and()
        while self._check(OPERATOR, "||"):
            self._advance()
            left = BinaryOp("||", left, self._parse_logical_and())
        return left

    def _parse_logical_and(self) -> Expr:
        left = self._parse_equality()
        while self._check(OPERATOR, "&&"):
            self._advance()
            left = BinaryOp("&&", left, self._parse_equality())
        return left

    def _parse_equality(self) -> Expr:
        left = self._parse_relational()
        while self._check(OPERATOR, "==") or self._check(OPERATOR, "!="):
            operator = self._advance().value
            left = BinaryOp(operator, left, self._parse_relational())
        return left

    def _parse_relational(self) -> Expr:
        left = self._parse_additive()
        while self._peek().kind == OPERATOR and self._peek().value in ("<", "<=", ">", ">="):
            operator = self._advance().value
            left = BinaryOp(operator, left, self._parse_additive())
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while self._peek().kind == OPERATOR and self._peek().value in ("+", "-"):
            operator = self._advance().value
            left = BinaryOp(operator, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while self._peek().kind == OPERATOR and self._peek().value in ("*", "/"):
            operator = self._advance().value
            left = BinaryOp(operator, left, self._parse_unary())
        return left

    def _parse_unary(self) -> Expr:
        if self._peek().kind == OPERATOR and self._peek().value in ("-", "+", "!"):
            operator = self._advance().value
            return UnaryOp(operator, self._parse_unary())
        return self._parse_power()

    def _parse_power(self) -> Expr:
        base = self._parse_primary()
        if self._check(OPERATOR, "**"):
            self._advance()
            exponent = self._parse_unary()
            return BinaryOp("**", base, exponent)
        return base

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.kind == NUMBER:
            self._advance()
            return Constant(parse_number(token.value))
        if token.kind == SYSTEM_IDENT:
            self._advance()
            if token.value not in SYSTEM_FUNCTIONS:
                raise VamsParseError(
                    f"unsupported system function {token.value!r}", token.line, token.column
                )
            return Variable(token.value)
        if token.kind == PUNCT and token.value == "(":
            self._advance()
            inner = self.parse_expression()
            self._expect(PUNCT, ")")
            return inner
        if token.kind == IDENT:
            return self._parse_identifier_expression()
        raise self._error(f"unexpected token {token.value!r} in expression")

    def _parse_identifier_expression(self) -> Expr:
        name_token = self._advance()
        name = name_token.value
        if not self._check(PUNCT, "("):
            return Variable(name)
        if name in _ACCESS_FUNCTIONS:
            self._position -= 1
            access = self._parse_access_reference()
            return Access(access.canonical_name(), access.kind)
        self._expect(PUNCT, "(")
        arguments: list[Expr] = []
        if not self._check(PUNCT, ")"):
            arguments.append(self.parse_expression())
            while self._accept(PUNCT, ","):
                arguments.append(self.parse_expression())
        self._expect(PUNCT, ")")
        if name == "ddt":
            if len(arguments) != 1:
                raise VamsParseError(
                    "ddt() takes exactly one argument", name_token.line, name_token.column
                )
            return Derivative(arguments[0])
        if name == "idt":
            if len(arguments) not in (1, 2):
                raise VamsParseError(
                    "idt() takes one or two arguments", name_token.line, name_token.column
                )
            initial = arguments[1] if len(arguments) == 2 else None
            return Integral(arguments[0], initial)
        if name in KNOWN_FUNCTIONS:
            return Call(name, arguments)
        raise VamsParseError(
            f"unknown function {name!r}", name_token.line, name_token.column
        )


def _as_statement_list(statement) -> list:
    if isinstance(statement, Block):
        return list(statement.statements)
    return [statement]


def _fold_constant(expression: Expr, module: VamsModule) -> float:
    """Evaluate a parameter default, allowing references to earlier parameters."""
    from ..expr.evaluate import evaluate

    bindings = module.parameter_values()
    return evaluate(expression, bindings)


def parse_source(source: str) -> list[VamsModule]:
    """Parse Verilog-AMS source text and return every module it defines."""
    return Parser(source).parse()


def parse_module(source: str) -> VamsModule:
    """Parse source text expected to contain exactly one module."""
    modules = parse_source(source)
    if len(modules) != 1:
        raise VamsParseError(
            f"expected exactly one module, found {len(modules)}"
        )
    return modules[0]
