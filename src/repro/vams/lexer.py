"""Tokeniser for the Verilog-AMS analog subset used by the paper.

The lexer understands the lexical elements needed by analog behavioural
models: identifiers, system identifiers (``$abstime``), numbers with
engineering scale factors (``5k``, ``25n``), operators (including the
contribution operator ``<+``), punctuation, and both comment styles.
Compiler directives (lines starting with a backtick, e.g.
``` `include "disciplines.vams" ```) are skipped, matching the behaviour of a
standalone analog elaborator that has the standard disciplines built in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..errors import VamsLexerError

#: Token categories.
IDENT = "IDENT"
SYSTEM_IDENT = "SYSTEM_IDENT"
NUMBER = "NUMBER"
STRING = "STRING"
OPERATOR = "OPERATOR"
PUNCT = "PUNCT"
KEYWORD = "KEYWORD"
EOF = "EOF"

#: Reserved words of the supported subset.
KEYWORDS = frozenset(
    {
        "module",
        "endmodule",
        "input",
        "output",
        "inout",
        "electrical",
        "voltage",
        "current",
        "ground",
        "parameter",
        "real",
        "integer",
        "branch",
        "analog",
        "begin",
        "end",
        "if",
        "else",
        "from",
        "exclude",
        "wire",
    }
)

#: Engineering scale factors defined by Verilog-AMS (section 2.6.2 of the LRM).
SCALE_FACTORS = {
    "T": 1e12,
    "G": 1e9,
    "M": 1e6,
    "K": 1e3,
    "k": 1e3,
    "m": 1e-3,
    "u": 1e-6,
    "n": 1e-9,
    "p": 1e-12,
    "f": 1e-15,
    "a": 1e-18,
}

#: Multi-character operators, longest first so the scanner is greedy.
_MULTI_CHAR_OPERATORS = ("<+", "**", "<=", ">=", "==", "!=", "&&", "||")
_SINGLE_CHAR_OPERATORS = "+-*/<>!?:="
_PUNCTUATION = "(),;[]{}@#."


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based line/column)."""

    kind: str
    value: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


class Lexer:
    """Streaming tokeniser over a Verilog-AMS source string."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.position = 0
        self.line = 1
        self.column = 1

    # -- low-level helpers -------------------------------------------------------
    def _peek(self, offset: int = 0) -> str:
        index = self.position + offset
        if index < len(self.source):
            return self.source[index]
        return ""

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.position : self.position + count]
        for char in text:
            if char == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.position += count
        return text

    def _error(self, message: str) -> VamsLexerError:
        return VamsLexerError(message, self.line, self.column)

    # -- scanning ----------------------------------------------------------------
    def tokens(self) -> Iterator[Token]:
        """Yield every token of the source, ending with an EOF token."""
        while self.position < len(self.source):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
                continue
            if char == "/" and self._peek(1) == "/":
                self._skip_line()
                continue
            if char == "/" and self._peek(1) == "*":
                self._skip_block_comment()
                continue
            if char == "`":
                # Compiler directive: ignore until end of line.
                self._skip_line()
                continue
            if char == '"':
                yield self._scan_string()
                continue
            if char.isdigit() or (char == "." and self._peek(1).isdigit()):
                yield self._scan_number()
                continue
            if char.isalpha() or char == "_":
                yield self._scan_identifier()
                continue
            if char == "$":
                yield self._scan_system_identifier()
                continue
            operator = self._scan_operator()
            if operator is not None:
                yield operator
                continue
            if char in _PUNCTUATION:
                line, column = self.line, self.column
                yield Token(PUNCT, self._advance(), line, column)
                continue
            raise self._error(f"unexpected character {char!r}")
        yield Token(EOF, "", self.line, self.column)

    def _skip_line(self) -> None:
        while self.position < len(self.source) and self._peek() != "\n":
            self._advance()

    def _skip_block_comment(self) -> None:
        start_line, start_column = self.line, self.column
        self._advance(2)
        while self.position < len(self.source):
            if self._peek() == "*" and self._peek(1) == "/":
                self._advance(2)
                return
            self._advance()
        raise VamsLexerError("unterminated block comment", start_line, start_column)

    def _scan_string(self) -> Token:
        line, column = self.line, self.column
        self._advance()  # opening quote
        characters: list[str] = []
        while self.position < len(self.source) and self._peek() != '"':
            characters.append(self._advance())
        if self.position >= len(self.source):
            raise VamsLexerError("unterminated string literal", line, column)
        self._advance()  # closing quote
        return Token(STRING, "".join(characters), line, column)

    def _scan_number(self) -> Token:
        line, column = self.line, self.column
        characters: list[str] = []
        while self._peek().isdigit():
            characters.append(self._advance())
        if self._peek() == "." and self._peek(1).isdigit():
            characters.append(self._advance())
            while self._peek().isdigit():
                characters.append(self._advance())
        if self._peek() in "eE" and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            characters.append(self._advance())
            if self._peek() in "+-":
                characters.append(self._advance())
            while self._peek().isdigit():
                characters.append(self._advance())
        elif self._peek() in SCALE_FACTORS and not self._peek(1).isalnum():
            characters.append(self._advance())
        return Token(NUMBER, "".join(characters), line, column)

    def _scan_identifier(self) -> Token:
        line, column = self.line, self.column
        characters: list[str] = []
        while self._peek().isalnum() or self._peek() == "_":
            characters.append(self._advance())
        text = "".join(characters)
        kind = KEYWORD if text in KEYWORDS else IDENT
        return Token(kind, text, line, column)

    def _scan_system_identifier(self) -> Token:
        line, column = self.line, self.column
        characters = [self._advance()]  # the dollar sign
        while self._peek().isalnum() or self._peek() == "_":
            characters.append(self._advance())
        return Token(SYSTEM_IDENT, "".join(characters), line, column)

    def _scan_operator(self) -> Token | None:
        line, column = self.line, self.column
        for operator in _MULTI_CHAR_OPERATORS:
            if self.source.startswith(operator, self.position):
                self._advance(len(operator))
                return Token(OPERATOR, operator, line, column)
        char = self._peek()
        if char in _SINGLE_CHAR_OPERATORS:
            return Token(OPERATOR, self._advance(), line, column)
        return None


def tokenize(source: str) -> list[Token]:
    """Tokenise ``source`` and return the full token list (ending with EOF)."""
    return list(Lexer(source).tokens())


def parse_number(text: str) -> float:
    """Convert a Verilog-AMS numeric literal (possibly scaled) to a float."""
    if text and text[-1] in SCALE_FACTORS:
        return float(text[:-1]) * SCALE_FACTORS[text[-1]]
    return float(text)
