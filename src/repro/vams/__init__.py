"""Verilog-AMS frontend: lexer, parser, classification and netlist extraction."""

from .ast import (
    FLOW,
    INOUT,
    INPUT,
    OUTPUT,
    POTENTIAL,
    AccessRef,
    Assignment,
    Block,
    BranchDeclaration,
    Contribution,
    IfStatement,
    Parameter,
    Port,
    VamsModule,
)
from .classify import (
    CONSERVATIVE,
    MIXED,
    SIGNAL_FLOW,
    Classification,
    classify_contribution,
    classify_module,
)
from .lexer import Lexer, Token, parse_number, tokenize
from .netlist import NetlistError, extract_dipole_equations, find_ground, to_circuit
from .parser import Parser, parse_module, parse_source

__all__ = [
    "AccessRef",
    "Assignment",
    "Block",
    "BranchDeclaration",
    "CONSERVATIVE",
    "Classification",
    "Contribution",
    "FLOW",
    "IfStatement",
    "INOUT",
    "INPUT",
    "Lexer",
    "MIXED",
    "NetlistError",
    "OUTPUT",
    "POTENTIAL",
    "Parameter",
    "Parser",
    "Port",
    "SIGNAL_FLOW",
    "Token",
    "VamsModule",
    "classify_contribution",
    "classify_module",
    "extract_dipole_equations",
    "find_ground",
    "parse_module",
    "parse_number",
    "parse_source",
    "to_circuit",
    "tokenize",
]
