"""The fault-campaign engine: fault universe × activation times × scenarios.

A :class:`FaultCampaignSpec` crosses three axes into a flat, deterministically
ordered list of :class:`FaultRun` experiments:

* the **fault universe** — any mix of analog netlist transforms and digital
  platform hooks from :mod:`repro.fault.models`;
* the **activation times** — absolute instants at which time-gated digital
  faults strike (analog faults are structural and permanently present, so
  they expand once, not once per time);
* the **platform scenarios** — a
  :class:`~repro.sweep.platform.PlatformScenarioSpec` (analog parameter
  point × integration style × firmware × stimulus family), defaulting to the
  single nominal configuration.

The expansion always starts with one **golden** (fault-free) run per platform
scenario: the reference every faulted run is compared against.  Per-run seeds
come from :mod:`repro.sweep.seeds`, the same spawn-based derivation the sweep
layer uses, so faults with randomized targets (e.g. random-address RAM
upsets) inject identically in serial and multiprocess executions.

:class:`FaultCampaignRunner` executes the expansion through the existing
:class:`~repro.sweep.platform.PlatformSweepRunner` multiprocessing fan-out —
a fault run *is* a platform scenario, carried by the picklable
:class:`FaultScenario` subclass — with error capture on, so a fault that
takes the CPU down (or makes the faulted netlist unabstractable) is recorded
as a crash outcome instead of aborting the campaign.  The result is a
:class:`~repro.fault.report.FaultCampaignResult` with per-fault verdicts,
coverage matrices and reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from ..errors import FaultError
from ..network.circuit import Circuit
from ..store import RunStore
from ..store import fingerprint as store_fingerprint
from ..sweep.platform import (
    PlatformScenario,
    PlatformScenarioSpec,
    PlatformSweepRunner,
    StimulusFamily,
    Stimuli,
)
from ..sweep.seeds import spawn_seeds
from ..vp.platform import SmartSystemPlatform
from .models import AnalogFault, DigitalFault, FaultModel
from .report import FaultCampaignResult

#: Synthetic factory parameter carrying the analog fault name through the
#: sweep layer.  It rides in ``PlatformScenario.params``, so the sweep
#: runner's per-parameter model memo naturally keys faulted abstractions
#: apart from nominal ones.
FAULT_PARAM = "_fault"


@dataclass
class FaultRun:
    """One campaign experiment: a fault (or none) on one platform scenario."""

    index: int
    fault: "FaultModel | None"
    at_time: float
    scenario: PlatformScenario
    seed: int

    @property
    def golden(self) -> bool:
        return self.fault is None

    def describe(self) -> str:
        tag = "golden" if self.fault is None else self.fault.name
        when = "" if self.fault is None or self.fault.layer == "analog" else (
            f"@{self.at_time:g}s"
        )
        return f"[{self.index}] {tag}{when} on {self.scenario.describe()}"


@dataclass
class FaultScenario(PlatformScenario):
    """A platform scenario with a fault riding along (picklable worker unit).

    Analog faults travel inside ``params`` (see :data:`FAULT_PARAM`) and are
    applied by the campaign's circuit factory; digital faults arm themselves
    on the assembled platform through the scenario preparation hook, inside
    the worker process.
    """

    fault: "FaultModel | None" = None
    at_time: float = 0.0
    fault_seed: int = 0

    def prepare_platform(self, platform: SmartSystemPlatform) -> None:
        if isinstance(self.fault, DigitalFault):
            self.fault.arm(
                platform, self.at_time, np.random.default_rng(self.fault_seed)
            )

    def store_key_extras(self) -> dict:
        """Content-key material for the run store: the full fault spec.

        The fault model's parameterization, its activation time and the
        per-run fault seed all change what :meth:`prepare_platform` injects,
        so they are part of the run's identity.  (Analog faults additionally
        ride in ``params`` via :data:`FAULT_PARAM`; fingerprinting the model
        here keys runs apart even when two campaigns reuse a fault *name*
        for different parameterizations.)
        """
        return {
            "fault": store_fingerprint(self.fault),
            "at_time": self.at_time,
            "fault_seed": self.fault_seed,
        }

    def describe(self) -> str:
        base = super().describe()
        if self.fault is None:
            return f"{base} golden"
        return f"{base} fault={self.fault.name}"


@dataclass
class FaultableCircuitFactory:
    """Circuit factory wrapper applying the named analog fault after build.

    The sweep workers call ``factory(**scenario.params)``; when the params
    carry :data:`FAULT_PARAM`, the corresponding netlist transform runs on
    the freshly built circuit.  Module-level and dataclass-based so the whole
    recipe pickles into worker processes.

    With ``lint`` set, every built circuit (golden and mutated alike) runs
    through the netlist semantic linter *after* the fault is applied; an
    error diagnostic raises :class:`repro.lint.LintError`, which the
    error-capturing platform worker records as a crash whose message the
    verdict classifier maps to ``lint-rejected`` — the mutant is skipped
    with a verdict instead of executing a non-physical circuit.
    """

    base: Callable[..., Circuit]
    faults: dict[str, AnalogFault] = field(default_factory=dict)
    lint: bool = False

    def __call__(self, _fault: str = "", **params) -> Circuit:
        circuit = self.base(**params)
        if _fault:
            self.faults[_fault].apply(circuit)
        if self.lint:
            from ..lint import LintError, lint_circuit

            report = lint_circuit(
                circuit, file=f"<fault:{_fault}>" if _fault else "<golden>"
            )
            if not report.ok:
                raise LintError(report)
        return circuit

    def store_fingerprint(self) -> list:
        """Run-store key material: the base factory only.

        The fault table is campaign-wide plumbing — which fault (if any) a
        given build applies is keyed per run through :data:`FAULT_PARAM` in
        the scenario params plus the scenario's fault extras (the full
        fault parameterization).  Keying the whole table here would
        needlessly re-execute golden runs whenever the universe changes.
        """
        return ["fault-factory", store_fingerprint(self.base)]


@dataclass
class FaultCampaignSpec:
    """Declarative description of a robustness campaign.

    ``activation_times`` applies to digital (time-gated) faults only; analog
    faults are structural and expand exactly once per platform scenario.
    ``scenarios`` defaults to the single nominal platform configuration
    (``python`` integration style, default firmware and stimulus).
    """

    faults: Sequence[FaultModel]
    activation_times: Sequence[float] = (0.0,)
    scenarios: "PlatformScenarioSpec | None" = None
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.faults:
            raise FaultError("a fault campaign needs at least one fault")
        names = [fault.name for fault in self.faults]
        duplicates = sorted({name for name in names if names.count(name) > 1})
        if duplicates:
            raise FaultError(
                f"duplicate fault names in the campaign universe: {duplicates}"
            )
        if not self.activation_times:
            raise FaultError("a fault campaign needs at least one activation time")
        for time in self.activation_times:
            if time < 0.0:
                raise FaultError("activation times must be non-negative")

    # -- axis expansion ----------------------------------------------------------------
    def platform_scenarios(self) -> list[PlatformScenario]:
        spec = self.scenarios if self.scenarios is not None else PlatformScenarioSpec()
        return spec.expand()

    def firmware_table(self) -> dict[str, "str | None"]:
        if self.scenarios is not None:
            return self.scenarios.firmware_table()
        return {"default": None}

    def analog_faults(self) -> dict[str, AnalogFault]:
        return {
            fault.name: fault
            for fault in self.faults
            if isinstance(fault, AnalogFault)
        }

    def expand(self) -> list[FaultRun]:
        """The flat campaign: golden runs first, then every faulted run.

        Ordering is deterministic and row-major (fault outermost, activation
        time, then platform scenario), so run indices are stable across
        serial and multiprocess executions.
        """
        scenarios = self.platform_scenarios()
        runs: list[FaultRun] = []
        for scenario in scenarios:
            runs.append(FaultRun(len(runs), None, 0.0, scenario, 0))
        for fault in self.faults:
            times = (
                (0.0,) if isinstance(fault, AnalogFault) else self.activation_times
            )
            for at_time in times:
                for scenario in scenarios:
                    runs.append(FaultRun(len(runs), fault, at_time, scenario, 0))
        for run, seed in zip(runs, spawn_seeds(self.seed, len(runs))):
            run.seed = seed
        return runs

    def __len__(self) -> int:
        scenarios = len(self.platform_scenarios())
        analog = sum(1 for fault in self.faults if isinstance(fault, AnalogFault))
        digital = len(self.faults) - analog
        return scenarios * (1 + analog + digital * len(list(self.activation_times)))


class FaultCampaignRunner:
    """Expand a campaign spec, run every experiment, classify every fault.

    Construction mirrors :class:`~repro.sweep.platform.PlatformSweepRunner`
    (circuit factory, observed output, stimulus families, timestep, worker
    count); ``nrmse_threshold`` is the ADC-trace divergence level above which
    a fault that left the software outcome untouched still counts as
    *trace-divergent* rather than *silent*.

    ``store``/``resume`` make campaigns durable: every completed run (golden
    and faulted alike) is committed to the content-addressed store as it
    finishes, and a resumed campaign loads committed runs instead of
    re-executing them — verdicts, coverage and reports of a resumed
    campaign are bit-identical to an uninterrupted one's.
    ``interrupt_after`` is the crash-simulation hook used by the resume
    tests and the CI smoke job (see
    :class:`~repro.sweep.platform.PlatformSweepRunner`).

    ``lint`` enables the strict static-analysis gate: every built circuit is
    run through :func:`repro.lint.lint_circuit` after its fault is applied,
    and a mutant the linter rejects is skipped with the ``lint-rejected``
    verdict instead of simulating a non-physical circuit.
    """

    def __init__(
        self,
        factory: Callable[..., Circuit],
        output: str,
        stimuli: "Stimuli | Mapping[str, StimulusFamily]",
        timestep: float = 50e-9,
        cpu_clock_hz: float = 20e6,
        method: str = "backward_euler",
        families: "bool | None" = None,
        workers: int = 1,
        cpu_block_cycles: int = 256,
        nrmse_threshold: float = 1e-3,
        cosim_options: "Mapping[str, int] | None" = None,
        store: "RunStore | str | None" = None,
        resume: bool = False,
        interrupt_after: "int | None" = None,
        trace: "bool | None" = None,
        progress: "bool | None" = None,
        lint: bool = False,
    ) -> None:
        if nrmse_threshold <= 0.0:
            raise FaultError("the NRMSE divergence threshold must be positive")
        self.factory = factory
        self.output = output
        self.stimuli = stimuli
        self.timestep = float(timestep)
        self.cpu_clock_hz = float(cpu_clock_hz)
        self.method = method
        self.families = families
        self.workers = int(workers)
        self.cpu_block_cycles = int(cpu_block_cycles)
        self.nrmse_threshold = float(nrmse_threshold)
        self.cosim_options = cosim_options
        self.store = store
        self.resume = bool(resume)
        self.interrupt_after = interrupt_after
        self.trace = trace
        self.progress = progress
        self.lint = bool(lint)

    def run(self, spec: FaultCampaignSpec, duration: float) -> FaultCampaignResult:
        """Execute every run of ``spec`` for ``duration`` seconds each."""
        runs = spec.expand()
        for run in runs:
            if (
                run.fault is not None
                and run.fault.layer == "digital"
                and run.at_time >= duration
            ):
                raise FaultError(
                    f"{run.describe()} activates at {run.at_time:g}s, at or "
                    f"beyond the {duration:g}s campaign duration — the fault "
                    f"would never strike"
                )
        scenarios = [self._as_scenario(position, run) for position, run in enumerate(runs)]
        runner = PlatformSweepRunner(
            FaultableCircuitFactory(self.factory, spec.analog_faults(), lint=self.lint),
            self.output,
            self.stimuli,
            timestep=self.timestep,
            cpu_clock_hz=self.cpu_clock_hz,
            method=self.method,
            families=self.families,
            workers=self.workers,
            record_analog=True,
            cpu_block_cycles=self.cpu_block_cycles,
            cosim_options=self.cosim_options,
            capture_errors=True,
            store=self.store,
            resume=self.resume,
            interrupt_after=self.interrupt_after,
            trace=self.trace,
            progress=self.progress,
        )
        sweep = runner.run(scenarios, duration, firmwares=spec.firmware_table())
        return FaultCampaignResult(
            runs=runs,
            results=sweep.results,
            elapsed=sweep.elapsed,
            duration=float(duration),
            timestep=self.timestep,
            workers=sweep.workers,
            nrmse_threshold=self.nrmse_threshold,
            timings=dict(sweep.timings),
            executed=sweep.executed,
            telemetry=(
                sweep.telemetry.retagged("fault-campaign")
                if sweep.telemetry is not None
                else None
            ),
        )

    @staticmethod
    def _as_scenario(position: int, run: FaultRun) -> FaultScenario:
        params = dict(run.scenario.params)
        if isinstance(run.fault, AnalogFault):
            params[FAULT_PARAM] = run.fault.name
        return FaultScenario(
            index=position,
            label=run.scenario.label,
            params=params,
            style=run.scenario.style,
            firmware=run.scenario.firmware,
            stimulus=run.scenario.stimulus,
            seed=run.scenario.seed,
            origin="fault-campaign",
            fault=run.fault,
            at_time=run.at_time,
            fault_seed=run.seed,
        )
