"""The fault model library: what can break, expressed at the right layer.

Faults come in two families, mirroring the two halves of the smart system:

**Analog faults** are netlist transforms.  They mutate the conservative
:class:`~repro.network.circuit.Circuit` *before* abstraction — a resistor
opening, a parameter drifting, an amplifier stage losing gain — so the faulty
behaviour flows through the entire abstraction methodology and every code
generation backend (scalar Python, the vectorized NumPy batch path, the
SystemC-DE/TDF wrappers, the conservative ELN/co-simulation solvers)
unchanged.  There is no "fault mode" in the simulators: a faulted circuit is
just another circuit.

**Digital faults** are platform hooks.  They arm themselves on a fully
assembled :class:`~repro.vp.platform.SmartSystemPlatform` — a saboteur
interposed on the APB bus in front of the ADC bridge or the UART, a bit flip
injected into RAM or a CPU register at a scheduled instant, an instruction
word corrupted under the running firmware.  Injections into CPU-visible state
go through :meth:`~repro.vp.platform.SmartSystemPlatform.schedule_injection`,
which synchronises the block-stepped ISS around the injection time, so
per-tick and block-stepped executions of a faulted platform stay
bit-identical.

Every fault has a deterministic ``name`` (derived from its parameters, usable
as a dictionary key and a report label) and a ``kind`` (the row label of
fault-coverage matrices).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import FaultError
from ..network.circuit import Circuit
from ..network.components import (
    Capacitor,
    Inductor,
    Resistor,
)
from ..vp.adc_bridge import DATA as ADC_DATA
from ..vp.apb import ApbPeripheral
from ..vp.firmware import CROSSING_COUNTER_ADDRESS
from ..vp.platform import SmartSystemPlatform
from ..vp.uart import TX_DATA as UART_TX_DATA

#: Attributes a component may carry its principal value in, probed in order
#: by the generic drift fault.
_VALUE_ATTRIBUTES = (
    "resistance",
    "capacitance",
    "inductance",
    "gain",
    "transconductance",
    "dc_value",
)


class FaultModel:
    """Base class of every injectable fault."""

    #: Coverage-matrix row label (one per fault class).
    kind: str = "fault"
    #: ``"analog"`` or ``"digital"``.
    layer: str = "analog"

    @property
    def name(self) -> str:
        """Deterministic identifier derived from the fault's parameters."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        return self.name


class AnalogFault(FaultModel):
    """A netlist transform: mutates a circuit before abstraction."""

    layer = "analog"

    def apply(self, circuit: Circuit) -> None:
        """Mutate ``circuit`` in place to its faulted form."""
        raise NotImplementedError


class DigitalFault(FaultModel):
    """A platform hook: arms itself on an assembled virtual platform."""

    layer = "digital"

    def arm(
        self,
        platform: SmartSystemPlatform,
        at_time: float,
        rng: np.random.Generator,
    ) -> None:
        """Install the fault on ``platform``, activating at ``at_time``.

        ``rng`` is the fault run's deterministic generator (derived through
        :mod:`repro.sweep.seeds`); faults with randomized targets draw from
        it, so serial and multiprocess campaign runs inject identically.
        """
        raise NotImplementedError


# ----------------------------------------------------------------------------------
# Analog faults
# ----------------------------------------------------------------------------------
def _value_attribute(component) -> str:
    for attribute in _VALUE_ATTRIBUTES:
        if hasattr(component, attribute):
            return attribute
    raise FaultError(
        f"component {type(component).__name__} has no recognised value "
        f"attribute to perturb (looked for {_VALUE_ATTRIBUTES})"
    )


@dataclass(frozen=True)
class ParameterDriftFault(AnalogFault):
    """A component's principal value drifts by a multiplicative ``factor``.

    Models ageing/temperature drift: the branch keeps its topology, only the
    coefficient changes (resistance, capacitance, inductance, gain,
    transconductance or DC value — whichever the component carries).
    """

    branch: str
    factor: float

    kind = "drift"

    def __post_init__(self) -> None:
        if self.factor <= 0.0:
            raise FaultError("a drift factor must be positive")

    @property
    def name(self) -> str:
        # repr, not %g: distinct near-unity factors must not collapse to one
        # name (names are campaign-unique keys and report labels).
        return f"drift:{self.branch}x{self.factor!r}"

    def apply(self, circuit: Circuit) -> None:
        component = circuit.branch(self.branch).component
        attribute = _value_attribute(component)
        setattr(component, attribute, getattr(component, attribute) * self.factor)


def _set_resistance(circuit: Circuit, branch: str, resistance: float) -> None:
    component = circuit.branch(branch).component
    if not isinstance(component, Resistor):
        raise FaultError(
            f"branch {branch!r} is a {type(component).__name__}, not a resistor"
        )
    component.resistance = resistance


@dataclass(frozen=True)
class ResistorOpenFault(AnalogFault):
    """A resistor goes open-circuit (its resistance becomes ``resistance``)."""

    branch: str
    resistance: float = 1e9

    kind = "open"

    @property
    def name(self) -> str:
        return f"open:{self.branch}"

    def apply(self, circuit: Circuit) -> None:
        _set_resistance(circuit, self.branch, self.resistance)


@dataclass(frozen=True)
class ResistorShortFault(AnalogFault):
    """A resistor shorts out (its resistance collapses to ``resistance``)."""

    branch: str
    resistance: float = 1e-2

    kind = "short"

    @property
    def name(self) -> str:
        return f"short:{self.branch}"

    def apply(self, circuit: Circuit) -> None:
        _set_resistance(circuit, self.branch, self.resistance)


@dataclass(frozen=True)
class GainDegradationFault(AnalogFault):
    """A controlled source loses gain (VCVS ``gain`` / VCCS ``transconductance``)."""

    branch: str
    factor: float = 0.5

    kind = "gain-degradation"

    def __post_init__(self) -> None:
        if not 0.0 <= self.factor:
            raise FaultError("the gain degradation factor must be non-negative")

    @property
    def name(self) -> str:
        return f"gain:{self.branch}x{self.factor!r}"

    def apply(self, circuit: Circuit) -> None:
        component = circuit.branch(self.branch).component
        for attribute in ("gain", "transconductance"):
            if hasattr(component, attribute):
                setattr(
                    component, attribute, getattr(component, attribute) * self.factor
                )
                return
        raise FaultError(
            f"branch {self.branch!r} is a {type(component).__name__}, which has "
            f"no gain to degrade"
        )


# ----------------------------------------------------------------------------------
# Bus saboteurs (the register-level digital faults)
# ----------------------------------------------------------------------------------
class BusSaboteur(ApbPeripheral):
    """Delegating APB proxy that corrupts selected transactions when active.

    Wraps the real peripheral in place on the bus
    (:meth:`~repro.vp.apb.ApbBus.interpose`); every register access is
    forwarded, and subclasses override :meth:`corrupt_read` /
    :meth:`corrupt_write` to mutate values once ``kernel.now`` has reached the
    activation time.  Peripheral-window accesses are always executed on their
    exact clock cycle by the block-stepped ISS, so time-gating on
    ``kernel.now`` is exact for any ``cpu_block_cycles``.
    """

    def __init__(self, inner: ApbPeripheral, kernel, at_time: float) -> None:
        self.inner = inner
        self.kernel = kernel
        self.at_time = at_time

    def active(self) -> bool:
        return self.kernel.now >= self.at_time - 1e-18

    def read_register(self, offset: int) -> int:
        value = self.inner.read_register(offset)
        if self.active():
            value = self.corrupt_read(offset, value) & 0xFFFFFFFF
        return value

    def write_register(self, offset: int, value: int) -> None:
        if self.active():
            value = self.corrupt_write(offset, value) & 0xFFFFFFFF
        self.inner.write_register(offset, value)

    def corrupt_read(self, offset: int, value: int) -> int:
        return value

    def corrupt_write(self, offset: int, value: int) -> int:
        return value


class _AdcStuckSaboteur(BusSaboteur):
    def __init__(self, inner, kernel, at_time, mask: int, stuck_at: int) -> None:
        super().__init__(inner, kernel, at_time)
        self.mask = mask
        self.stuck_at = stuck_at

    def corrupt_read(self, offset: int, value: int) -> int:
        if offset == ADC_DATA:
            return value | self.mask if self.stuck_at else value & ~self.mask
        return value


class _AdcFlipSaboteur(BusSaboteur):
    def __init__(self, inner, kernel, at_time, mask: int) -> None:
        super().__init__(inner, kernel, at_time)
        self.mask = mask
        self.fired = False

    def corrupt_read(self, offset: int, value: int) -> int:
        if offset == ADC_DATA and not self.fired:
            self.fired = True
            return value ^ self.mask
        return value


class _UartSaboteur(BusSaboteur):
    def __init__(self, inner, kernel, at_time, mask: int) -> None:
        super().__init__(inner, kernel, at_time)
        self.mask = mask

    def corrupt_write(self, offset: int, value: int) -> int:
        if offset == UART_TX_DATA:
            return value ^ self.mask
        return value


# ----------------------------------------------------------------------------------
# Digital faults
# ----------------------------------------------------------------------------------
def _check_bit(bit: int, limit: int = 32) -> None:
    if not 0 <= bit < limit:
        raise FaultError(f"bit index {bit} outside 0..{limit - 1}")


@dataclass(frozen=True)
class AdcStuckBitFault(DigitalFault):
    """One bit of the ADC data register sticks at ``stuck_at`` (0 or 1).

    The classic converter defect: the analog waveform is intact, but every
    sample the firmware reads after activation has the bit forced.
    """

    bit: int
    stuck_at: int = 1

    kind = "adc-stuck"

    def __post_init__(self) -> None:
        _check_bit(self.bit)
        if self.stuck_at not in (0, 1):
            raise FaultError("stuck_at must be 0 or 1")

    @property
    def name(self) -> str:
        return f"adc-stuck{self.stuck_at}:bit{self.bit}"

    def arm(self, platform, at_time, rng) -> None:
        platform.bus.interpose(
            "adc0",
            lambda adc: _AdcStuckSaboteur(
                adc, platform.kernel, at_time, 1 << self.bit, self.stuck_at
            ),
        )


@dataclass(frozen=True)
class AdcBitFlipFault(DigitalFault):
    """A single-event upset in the ADC: exactly one read after activation
    returns the sample with ``bit`` flipped."""

    bit: int

    kind = "adc-flip"

    def __post_init__(self) -> None:
        _check_bit(self.bit)

    @property
    def name(self) -> str:
        return f"adc-flip:bit{self.bit}"

    def arm(self, platform, at_time, rng) -> None:
        platform.bus.interpose(
            "adc0",
            lambda adc: _AdcFlipSaboteur(adc, platform.kernel, at_time, 1 << self.bit),
        )


@dataclass(frozen=True)
class UartCorruptionFault(DigitalFault):
    """Every byte the firmware transmits after activation is XORed with ``mask``
    (a noisy serial link / marginal line driver)."""

    mask: int = 0x20

    kind = "uart-corruption"

    def __post_init__(self) -> None:
        if not 0 < self.mask <= 0xFF:
            raise FaultError("the UART corruption mask must be a non-zero byte")

    @property
    def name(self) -> str:
        return f"uart-xor:{self.mask:#04x}"

    def arm(self, platform, at_time, rng) -> None:
        platform.bus.interpose(
            "uart0",
            lambda uart: _UartSaboteur(uart, platform.kernel, at_time, self.mask),
        )


@dataclass(frozen=True)
class MemoryBitFlipFault(DigitalFault):
    """A single-event upset in RAM: one bit of one byte flips at the
    activation time.

    ``address=None`` picks a uniformly random RAM byte from the campaign's
    per-fault generator, which is how radiation-style campaigns sample the
    address space deterministically.  The flip goes through
    :meth:`~repro.vp.memory.Memory.flip_bit` with watcher notification, so a
    hit inside the code region re-decodes (and may legally crash the CPU).
    """

    address: "int | None" = CROSSING_COUNTER_ADDRESS
    bit: int = 0

    kind = "memory-flip"

    def __post_init__(self) -> None:
        _check_bit(self.bit, 8)

    @property
    def name(self) -> str:
        where = "rand" if self.address is None else f"{self.address:#x}"
        return f"mem-flip:{where}.{self.bit}"

    def arm(self, platform, at_time, rng) -> None:
        memory = platform.memory
        address = self.address
        if address is None:
            address = memory.base + int(rng.integers(0, memory.size))
        platform.schedule_injection(
            at_time, lambda: memory.flip_bit(address, self.bit)
        )


@dataclass(frozen=True)
class RegisterTransientFault(DigitalFault):
    """A transient bit flip in a CPU general-purpose register at the
    activation time (``$zero`` is not a valid target — it is hard-wired)."""

    register: int
    bit: int = 0

    kind = "register-flip"

    def __post_init__(self) -> None:
        if not 1 <= self.register <= 31:
            raise FaultError("the register index must be in 1..31")
        _check_bit(self.bit)

    @property
    def name(self) -> str:
        return f"reg-flip:r{self.register}.{self.bit}"

    def arm(self, platform, at_time, rng) -> None:
        cpu = platform.cpu

        def inject() -> None:
            cpu.write_register(
                self.register, cpu.read_register(self.register) ^ (1 << self.bit)
            )

        platform.schedule_injection(at_time, inject)


@dataclass(frozen=True)
class InstructionCorruptionFault(DigitalFault):
    """An instruction word in RAM is overwritten at the activation time.

    With the default ``value`` (an unimplemented opcode) this is the
    crash-fault archetype: the next fetch of the word raises a
    :class:`~repro.errors.CpuFault`, which the campaign records as a
    ``crash`` verdict.  The poke notifies the memory write watchers, so the
    predecoded ISS re-decodes the word instead of executing a stale copy.
    """

    address: int
    value: int = 0xFFFF_FFFF

    kind = "code-corruption"

    def __post_init__(self) -> None:
        if self.address % 4 != 0:
            raise FaultError("instruction corruption needs a word-aligned address")

    @property
    def name(self) -> str:
        return f"code-corrupt:{self.address:#x}"

    def arm(self, platform, at_time, rng) -> None:
        memory = platform.memory
        image = (self.value & 0xFFFF_FFFF).to_bytes(4, "little")
        platform.schedule_injection(at_time, lambda: memory.poke(self.address, image))


# ----------------------------------------------------------------------------------
# Fault universes: sensible default fault sets for a campaign
# ----------------------------------------------------------------------------------
def analog_fault_universe(
    circuit: Circuit,
    drift_factor: float = 1.2,
    gain_factor: float = 0.5,
) -> list[AnalogFault]:
    """One plausible fault set for every branch of ``circuit``.

    Resistors get open/short/drift, energy-storage elements get drift,
    controlled sources get gain degradation; source branches are left alone
    (a faulty stimulus is a scenario, not a component fault).
    """
    faults: list[AnalogFault] = []
    for branch in circuit:
        component = branch.component
        if isinstance(component, Resistor):
            faults.append(ResistorOpenFault(branch.name))
            faults.append(ResistorShortFault(branch.name))
            faults.append(ParameterDriftFault(branch.name, drift_factor))
        elif isinstance(component, (Capacitor, Inductor)):
            faults.append(ParameterDriftFault(branch.name, drift_factor))
        elif hasattr(component, "gain") or hasattr(component, "transconductance"):
            faults.append(GainDegradationFault(branch.name, gain_factor))
    return faults


def digital_fault_universe(
    adc_bits: "tuple[int, ...]" = (0, 2, 5, 9),
    register_indices: "tuple[int, ...]" = (10, 11, 17),
    memory_bits: "tuple[int, ...]" = (0, 3),
    uart_masks: "tuple[int, ...]" = (0x20,),
) -> list[DigitalFault]:
    """The default digital fault set of the smart-system platform.

    ADC stuck-at-0/1 and transient flips over ``adc_bits``, register
    transients over ``register_indices`` (defaults target the threshold
    firmware's working registers), RAM flips of the crossing counter over
    ``memory_bits``, and UART corruption with each mask in ``uart_masks``.
    """
    faults: list[DigitalFault] = []
    for bit in adc_bits:
        faults.append(AdcStuckBitFault(bit, stuck_at=1))
        faults.append(AdcStuckBitFault(bit, stuck_at=0))
        faults.append(AdcBitFlipFault(bit))
    for register in register_indices:
        faults.append(RegisterTransientFault(register))
    for bit in memory_bits:
        faults.append(MemoryBitFlipFault(CROSSING_COUNTER_ADDRESS, bit))
    for mask in uart_masks:
        faults.append(UartCorruptionFault(mask))
    return faults
