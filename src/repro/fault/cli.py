"""Command-line fault campaigns (the ``repro-faults`` entry point).

Runs a robustness campaign over one of the paper's benchmark circuits on the
smart-system virtual platform: the default universe is every plausible
analog fault of the netlist (:func:`~repro.fault.models.analog_fault_universe`)
plus the standard digital set
(:func:`~repro.fault.models.digital_fault_universe`), executed against a
golden run and classified into silent / trace-divergent / firmware-detected /
crash.

``--smoke`` runs the CI-sized campaign and *asserts* the classification is
alive — at least one detected and at least one silent fault — so a broken
detectability analysis fails the pipeline instead of printing garbage
coverage numbers.

``--store DIR`` makes the campaign durable: every completed run is
committed to a content-addressed :class:`~repro.store.RunStore` as it
finishes, and ``--resume`` loads committed runs instead of re-executing
them — an interrupted campaign picks up where it left off with
bit-identical verdicts.  ``--interrupt-after N`` simulates the crash (each
worker stops after executing N runs, exit code 3), which is how the CI
resume-smoke job exercises the store round-trip.

Typical use::

    repro-faults --circuit RC1 --duration 2e-4 --workers 4 \\
        --markdown fault_report.md --csv fault_report.csv
    repro-faults --smoke
    repro-faults --smoke --store campaign/   # interrupted? add --resume
"""

from __future__ import annotations

import argparse

from ..circuits import benchmark_by_name
from ..obs.export import write_trace_json
from ..sim.sources import SquareWave
from ..store import CampaignInterrupted, RunStore
from ..sweep.platform import PlatformScenarioSpec
from ..vp.firmware import threshold_monitor_source
from .campaign import FaultCampaignRunner, FaultCampaignSpec
from ..errors import FaultError
from .models import (
    AdcStuckBitFault,
    MemoryBitFlipFault,
    ParameterDriftFault,
    UartCorruptionFault,
    analog_fault_universe,
    digital_fault_universe,
)
from .report import VERDICT_SILENT, VERDICTS, FaultCampaignResult


def silent_sentinel(circuit) -> ParameterDriftFault:
    """A negligible drift on the circuit's first driftable branch.

    Every CLI campaign carries one fault that must classify *silent* (the
    classifier's floor); the target branch depends on the chosen benchmark
    circuit, so it is looked up rather than hardcoded.
    """
    for branch in circuit:
        if any(
            hasattr(branch.component, attribute)
            for attribute in ("resistance", "capacitance", "inductance")
        ):
            return ParameterDriftFault(branch.name, 1.0 + 1e-9)
    raise FaultError(
        f"circuit {circuit.name!r} has no passive branch to use as the "
        f"silent-drift sentinel"
    )


def smoke_problems(result: FaultCampaignResult) -> list[str]:
    """The smoke-mode sanity conditions; empty list means healthy."""
    counts = result.counts()
    problems = []
    if counts[VERDICT_SILENT] < 1:
        problems.append(
            "no fault was classified silent — the near-nominal drift should be"
        )
    detected = sum(
        count for verdict, count in counts.items() if verdict != VERDICT_SILENT
    )
    if detected < 1:
        problems.append(
            "no fault was detected — the stuck ADC bit must perturb the firmware"
        )
    return problems


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--circuit",
        default="RC1",
        help="benchmark circuit (2IN, RC<n>, OA; default RC1)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=2e-4,
        help="simulated seconds per run (default 2e-4)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, help="multiprocessing workers (default 1)"
    )
    parser.add_argument("--seed", type=int, default=0, help="campaign root seed")
    parser.add_argument(
        "--styles",
        default="python",
        help="comma-separated analog integration styles (default: python)",
    )
    parser.add_argument(
        "--threshold-mv",
        type=int,
        default=500,
        help="firmware crossing threshold in millivolts (default 500)",
    )
    parser.add_argument(
        "--nrmse-threshold",
        type=float,
        default=1e-3,
        help="ADC-trace NRMSE above which a fault is trace-divergent",
    )
    parser.add_argument(
        "--at",
        type=float,
        action="append",
        default=None,
        help="activation time(s) for digital faults in seconds "
        "(repeatable; default: half the duration)",
    )
    parser.add_argument(
        "--markdown", default=None, help="write the markdown report to this path"
    )
    parser.add_argument(
        "--csv", default=None, help="write the per-run CSV to this path"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized campaign with classification sanity assertions",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="campaign-store directory: commit every completed run atomically",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="load runs already committed to --store instead of re-executing",
    )
    parser.add_argument(
        "--interrupt-after",
        type=int,
        default=None,
        metavar="N",
        help="crash simulation: stop each worker after executing N runs "
        "(exit code 3; requires --store)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="collect telemetry and write a Chrome trace_event JSON file "
        "(inspect with repro-trace or chrome://tracing)",
    )
    parser.add_argument(
        "--report",
        default=None,
        metavar="FILE",
        help="write a self-contained HTML dashboard of the campaign "
        "(implies telemetry collection; see repro-report)",
    )
    parser.add_argument(
        "--telemetry",
        default=None,
        metavar="FILE",
        help="write the merged campaign telemetry as a markdown report "
        "(implies telemetry collection)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the live progress line and telemetry summary",
    )
    arguments = parser.parse_args(argv)
    if arguments.resume and arguments.store is None:
        parser.error("--resume needs --store to resume from")
    if arguments.interrupt_after is not None and arguments.store is None:
        parser.error("--interrupt-after without --store would lose all work")
    if arguments.interrupt_after is not None and arguments.interrupt_after < 0:
        parser.error("--interrupt-after must be non-negative")

    duration = 1.2e-4 if arguments.smoke else arguments.duration
    activation = arguments.at if arguments.at else [duration / 2.0]
    bench = benchmark_by_name(arguments.circuit)
    stimuli = {name: SquareWave(period=4e-5) for name in bench.stimuli}

    sentinel = silent_sentinel(bench.circuit())
    if arguments.smoke:
        faults = [
            sentinel,  # below any threshold: silent
            ParameterDriftFault(sentinel.branch, 2.0),  # visible analog divergence
            AdcStuckBitFault(bit=9, stuck_at=1),  # +512 mV: firmware must react
            MemoryBitFlipFault(bit=0),  # crossing-counter upset
            UartCorruptionFault(0x20),  # serial-link corruption
        ]
    else:
        faults = [
            sentinel,
            *analog_fault_universe(bench.circuit()),
            *digital_fault_universe(),
        ]

    spec = FaultCampaignSpec(
        faults=faults,
        activation_times=tuple(activation),
        scenarios=PlatformScenarioSpec(
            styles=tuple(arguments.styles.split(",")),
            firmwares={"threshold": threshold_monitor_source(arguments.threshold_mv)},
        ),
        seed=arguments.seed,
    )
    trace = bool(arguments.trace or arguments.telemetry or arguments.report)
    runner = FaultCampaignRunner(
        bench.build,
        bench.output,
        stimuli,
        workers=arguments.workers,
        nrmse_threshold=arguments.nrmse_threshold,
        store=arguments.store,
        resume=arguments.resume,
        interrupt_after=arguments.interrupt_after,
        trace=trace or None,
        progress=False if arguments.quiet else None,
    )
    total = len(spec)
    golden = len(spec.platform_scenarios())
    print(
        f"Running {total} platform runs ({total - golden} faulted) on "
        f"{bench.name} for {duration:g}s each..."
    )
    try:
        result = runner.run(spec, duration)
    except CampaignInterrupted as interrupt:
        # The store may be shared across campaigns (golden runs are reused),
        # so report its record count as what it is — not as "N of this
        # campaign's runs".
        print(f"INTERRUPTED: {interrupt}")
        print(
            f"store {arguments.store} now holds "
            f"{len(RunStore(arguments.store))} record(s); re-run with "
            f"--store {arguments.store} --resume to finish"
        )
        return 3

    if arguments.store:
        loaded = result.n_runs - result.executed_count
        print(
            f"campaign store {arguments.store}: {result.executed_count} runs "
            f"executed, {loaded} loaded (store holds "
            f"{len(RunStore(arguments.store))} records)"
        )
    counts = result.counts()
    print(f"fault coverage: {result.coverage_text()} non-silent")
    for verdict in VERDICTS:
        print(f"  {verdict:18s} {counts[verdict]}")
    print(f"  equivalence classes: {len(result.collapse())}")

    if arguments.markdown:
        with open(arguments.markdown, "w") as handle:
            handle.write(result.to_markdown() + "\n")
        print(f"wrote {arguments.markdown}")
    if arguments.csv:
        with open(arguments.csv, "w") as handle:
            handle.write(result.to_csv() + "\n")
        print(f"wrote {arguments.csv}")
    if arguments.report:
        from ..report import Dashboard, fault_section, telemetry_section

        dashboard = Dashboard(
            title=f"Fault campaign — {bench.name}",
            subtitle=f"{total} runs, {duration:g} s each",
        )
        dashboard.add(fault_section(result))
        if result.telemetry is not None:
            dashboard.add(telemetry_section(result.telemetry))
        print(f"wrote {dashboard.write(arguments.report)}")
    if trace and result.telemetry is not None:
        if arguments.trace:
            write_trace_json(arguments.trace, result.telemetry)
            print(f"wrote {arguments.trace}")
        if arguments.telemetry:
            with open(arguments.telemetry, "w") as handle:
                handle.write(result.telemetry.to_markdown() + "\n")
            print(f"wrote {arguments.telemetry}")
        if not arguments.quiet:
            report = result.telemetry
            line = (
                f"telemetry: {report.executed} executed in {report.wall:.2f}s "
                f"({report.throughput:.2f} runs/s"
            )
            utilization = report.worker_utilization
            if utilization is not None:
                line += f", {100.0 * utilization:.0f}% worker utilization"
            print(line + ")")

    if arguments.smoke:
        problems = smoke_problems(result)
        for problem in problems:
            print(f"SMOKE FAILURE: {problem}")
        if problems:
            return 1
        print("smoke campaign healthy: detected and silent faults both present")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
