"""Detectability analysis of a fault campaign: verdicts, coverage, collapse.

Every faulted run is compared against the golden (fault-free) run of the same
platform scenario and classified into exactly one verdict:

``crash``
    The run did not complete: the injected fault took the platform down (an
    illegal instruction after code corruption, a wild bus access), or the
    faulted netlist could not be abstracted at all.
``firmware-detected``
    The software-visible outcome changed: the UART byte stream or the
    crossing counter the firmware maintains in RAM differs from golden.  This
    is the observable the paper's holistic what-if analysis cares about — the
    firmware *reacted* (correctly or not) to the fault.
``trace-divergent``
    The software outcome is identical, but the ADC sample stream diverges
    from golden beyond the campaign's NRMSE threshold: the fault corrupts the
    analog signal without the firmware noticing — silent data corruption at
    the system boundary.
``silent``
    Nothing observable changed.  (For analog faults, a drift below the NRMSE
    threshold; for digital faults, an injection that was masked before any
    readout.)

The **fault collapse** groups runs whose entire observable outcome —
software fingerprint plus bit-exact ADC trace — coincides, the dictionary
trick of classic fault simulation: faults in one equivalence class are
indistinguishable by this campaign and need only one representative in a
denser test set.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..errors import FaultError
from ..metrics.nrmse import nrmse
from ..vp.platform import PlatformRunResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (campaign imports us)
    from .campaign import FaultRun

#: The five verdicts, in increasing severity order.  ``lint-rejected`` is
#: the strict static-analysis gate (``lint=True`` on the campaign runner):
#: the faulted circuit never executed because :mod:`repro.lint` found an
#: error in it, so the mutant is skipped-with-verdict rather than crashed.
VERDICT_SILENT = "silent"
VERDICT_TRACE = "trace-divergent"
VERDICT_DETECTED = "firmware-detected"
VERDICT_LINT = "lint-rejected"
VERDICT_CRASH = "crash"
VERDICTS = (
    VERDICT_SILENT,
    VERDICT_TRACE,
    VERDICT_DETECTED,
    VERDICT_LINT,
    VERDICT_CRASH,
)


def trace_nrmse(
    golden: PlatformRunResult, faulted: PlatformRunResult
) -> "float | None":
    """NRMSE of the faulted ADC stream versus golden (``None`` if unrecorded).

    Both runs sample the same platform on the same analog grid, so the
    streams are index-aligned; a crashed run's shorter stream is compared
    over the common prefix.
    """
    if golden.analog_trace is None or faulted.analog_trace is None:
        return None
    reference = np.asarray(golden.analog_trace, dtype=float)
    measured = np.asarray(faulted.analog_trace, dtype=float)
    length = min(reference.size, measured.size)
    if length == 0:
        return None
    return float(nrmse(reference[:length], measured[:length]))


def classify_run(
    golden: PlatformRunResult,
    faulted: PlatformRunResult,
    nrmse_threshold: float,
) -> tuple[str, "float | None", str]:
    """Classify one faulted run; returns ``(verdict, nrmse, detail)``."""
    error = trace_nrmse(golden, faulted)
    if faulted.crashed is not None:
        if faulted.crashed.startswith("LintError"):
            return VERDICT_LINT, error, faulted.crashed
        return VERDICT_CRASH, error, faulted.crashed
    if faulted.uart_output != golden.uart_output:
        return (
            VERDICT_DETECTED,
            error,
            f"UART diverged ({golden.uart_output!r} -> {faulted.uart_output!r})",
        )
    if faulted.crossings_reported != golden.crossings_reported:
        return (
            VERDICT_DETECTED,
            error,
            f"crossing counter diverged ({golden.crossings_reported} -> "
            f"{faulted.crossings_reported})",
        )
    if error is not None and error > nrmse_threshold:
        return (
            VERDICT_TRACE,
            error,
            f"ADC trace NRMSE {error:.3e} > {nrmse_threshold:g}",
        )
    return VERDICT_SILENT, error, "no observable divergence"


@dataclass
class FaultVerdict:
    """The classification of one faulted run."""

    run: "FaultRun"
    result: PlatformRunResult
    verdict: str
    nrmse: "float | None"
    detail: str

    @property
    def detected(self) -> bool:
        """Whether the fault left *any* observable mark (non-silent)."""
        return self.verdict != VERDICT_SILENT


@dataclass
class FaultCampaignResult:
    """Everything produced by one :class:`~repro.fault.campaign.FaultCampaignRunner` run."""

    runs: "list[FaultRun]"
    results: list[PlatformRunResult]
    elapsed: np.ndarray
    duration: float
    timestep: float
    workers: int = 1
    nrmse_threshold: float = 1e-3
    timings: dict[str, float] = field(default_factory=dict)
    #: Per-run execution flags: ``True`` for runs simulated by this campaign,
    #: ``False`` for runs loaded from a campaign store (resume).
    executed: "np.ndarray | None" = None
    #: Merged worker telemetry (:class:`~repro.obs.telemetry.TelemetryReport`)
    #: when the campaign was traced; ``None`` otherwise.
    telemetry: object | None = None
    _verdicts: "list[FaultVerdict] | None" = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if len(self.runs) != len(self.results):
            raise FaultError(
                f"campaign bookkeeping mismatch: {len(self.runs)} runs but "
                f"{len(self.results)} results"
            )

    # -- shape queries -----------------------------------------------------------------
    @property
    def n_runs(self) -> int:
        return len(self.runs)

    @property
    def n_faulted(self) -> int:
        return sum(1 for run in self.runs if not run.golden)

    @property
    def executed_count(self) -> int:
        """Runs actually simulated (all of them without a resume store)."""
        if self.executed is None:
            return self.n_runs
        return int(np.count_nonzero(self.executed))

    def fingerprints(self) -> list[tuple]:
        """Per-run deterministic outcomes, in run order (serial == parallel)."""
        return [result.fingerprint() for result in self.results]

    # -- golden references -------------------------------------------------------------
    def golden_results(self) -> dict[int, PlatformRunResult]:
        """Golden run results keyed by platform-scenario index."""
        golden: dict[int, PlatformRunResult] = {}
        for run, result in zip(self.runs, self.results):
            if run.golden:
                if result.crashed is not None:
                    raise FaultError(
                        f"golden run {run.describe()} crashed ({result.crashed}); "
                        f"the campaign baseline is invalid"
                    )
                golden[run.scenario.index] = result
        if not golden:
            raise FaultError("the campaign contains no golden run")
        return golden

    # -- classification ----------------------------------------------------------------
    def verdicts(self) -> list[FaultVerdict]:
        """One verdict per *faulted* run (golden runs are the reference)."""
        if self._verdicts is None:
            golden = self.golden_results()
            verdicts: list[FaultVerdict] = []
            for run, result in zip(self.runs, self.results):
                if run.golden:
                    continue
                reference = golden.get(run.scenario.index)
                if reference is None:
                    raise FaultError(
                        f"no golden run for the platform scenario of "
                        f"{run.describe()}"
                    )
                verdict, error, detail = classify_run(
                    reference, result, self.nrmse_threshold
                )
                verdicts.append(FaultVerdict(run, result, verdict, error, detail))
            self._verdicts = verdicts
        return self._verdicts

    def counts(self) -> dict[str, int]:
        """Faulted-run count per verdict (every verdict present, maybe 0)."""
        counts = {verdict: 0 for verdict in VERDICTS}
        for entry in self.verdicts():
            counts[entry.verdict] += 1
        return counts

    def detected_fraction(self) -> float:
        """Fault coverage: the fraction of faulted runs that were non-silent.

        ``nan`` when the campaign has no faulted runs — coverage of an empty
        universe is undefined, not zero.  Reports must render that case via
        :meth:`coverage_text`, never by formatting the raw fraction.
        """
        verdicts = self.verdicts()
        if not verdicts:
            return float("nan")
        return sum(1 for entry in verdicts if entry.detected) / len(verdicts)

    def coverage_text(self) -> str:
        """Human-readable fault coverage (``"n/a (0 faulted runs)"`` safe)."""
        fraction = self.detected_fraction()
        if math.isnan(fraction):
            return "n/a (0 faulted runs)"
        return f"{100.0 * fraction:.1f} %"

    def coverage_matrix(self) -> dict[str, dict[str, int]]:
        """Fault-kind × verdict matrix (rows in first-appearance order)."""
        matrix: dict[str, dict[str, int]] = {}
        for entry in self.verdicts():
            row = matrix.setdefault(
                entry.run.fault.kind, {verdict: 0 for verdict in VERDICTS}
            )
            row[entry.verdict] += 1
        return matrix

    # -- fault collapse ----------------------------------------------------------------
    def outcome_fingerprint(self, position: int) -> tuple:
        """The full observable outcome of run ``position``: the software
        fingerprint plus a digest of the bit-exact ADC stream."""
        result = self.results[position]
        if result.analog_trace is None:
            digest = "unrecorded"
        else:
            trace = np.asarray(result.analog_trace, dtype=float)
            digest = hashlib.sha256(trace.tobytes()).hexdigest()[:16]
        return (self.runs[position].scenario.index, result.fingerprint(), digest)

    def collapse(self) -> "list[list[FaultVerdict]]":
        """Equivalence classes of faulted runs with identical outcomes.

        The dictionary-style fault collapse: within one platform scenario,
        faults whose complete observable outcome coincides are mutually
        indistinguishable.  Classes are returned largest-first; singleton
        classes are included (a fault with a unique outcome is its own
        class).
        """
        by_verdict_position = {
            entry.run.index: entry for entry in self.verdicts()
        }
        classes: dict[tuple, list[FaultVerdict]] = {}
        for position, run in enumerate(self.runs):
            if run.golden:
                continue
            classes.setdefault(self.outcome_fingerprint(position), []).append(
                by_verdict_position[run.index]
            )
        return sorted(classes.values(), key=len, reverse=True)

    # -- reporting ---------------------------------------------------------------------
    def to_markdown(self) -> str:
        """Markdown report: verdict totals, coverage matrix, collapse, runs."""
        counts = self.counts()
        collapse = self.collapse()
        lines = [
            f"# Fault campaign report — {self.n_faulted} faulted runs, "
            f"{self.n_runs - self.n_faulted} golden",
            "",
            f"- simulated time per run: {self.duration:g} s "
            f"(analog timestep {self.timestep:g} s)",
            f"- workers: {self.workers}",
            f"- trace-divergence threshold: NRMSE > {self.nrmse_threshold:g}",
            f"- fault coverage (non-silent): {self.coverage_text()}",
            f"- equivalence classes after collapse: {len(collapse)}",
        ]
        for phase, seconds in self.timings.items():
            lines.append(f"- {phase}: {seconds:.3f} s")
        lines.append("")
        lines.append("## Verdicts")
        lines.append("")
        lines.append("| verdict | runs |")
        lines.append("|---|---|")
        for verdict in VERDICTS:
            lines.append(f"| {verdict} | {counts[verdict]} |")
        lines.append("")
        lines.append("## Coverage by fault kind")
        lines.append("")
        lines.append("| fault kind | " + " | ".join(VERDICTS) + " | total |")
        lines.append("|---|" + "---|" * (len(VERDICTS) + 1))
        for kind, row in self.coverage_matrix().items():
            cells = " | ".join(str(row[verdict]) for verdict in VERDICTS)
            lines.append(f"| {kind} | {cells} | {sum(row.values())} |")
        lines.append("")
        lines.append("## Equivalent faults (collapsed)")
        lines.append("")
        multi = [group for group in collapse if len(group) > 1]
        if not multi:
            lines.append("every faulted run produced a unique outcome")
        for group in multi:
            members = ", ".join(
                f"`{entry.run.fault.name}`" for entry in group
            )
            lines.append(
                f"- {len(group)} runs, verdict {group[0].verdict}: {members}"
            )
        lines.append("")
        lines.append("## Faulted runs")
        lines.append("")
        header = self._header_cells()
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "---|" * len(header))
        for entry in self.verdicts():
            lines.append("| " + " | ".join(self._row_cells(entry)) + " |")
        return "\n".join(lines)

    #: Free-text columns of the run table that may contain commas and are
    #: therefore quoted in CSV output: scenario label and verdict detail.
    _QUOTED_COLUMNS = (5, 13)

    def to_csv(self) -> str:
        """The per-faulted-run table as CSV (quoted free-text columns)."""
        rows = [",".join(self._header_cells())]
        for entry in self.verdicts():
            cells = self._row_cells(entry)
            for column in self._QUOTED_COLUMNS:
                cells[column] = '"{}"'.format(cells[column].replace('"', "'"))
            rows.append(",".join(cells))
        return "\n".join(rows)

    def _header_cells(self) -> list[str]:
        return [
            "#",
            "fault",
            "kind",
            "layer",
            "at_time",
            "scenario",
            "style",
            "firmware",
            "stimulus",
            "verdict",
            "nrmse",
            "uart_bytes",
            "crossings",
            "detail",
        ]

    def _row_cells(self, entry: FaultVerdict) -> list[str]:
        run = entry.run
        return [
            str(run.index),
            run.fault.name,
            run.fault.kind,
            run.fault.layer,
            "-" if run.fault.layer == "analog" else f"{run.at_time:g}",
            run.scenario.label,
            run.scenario.style,
            run.scenario.firmware,
            run.scenario.stimulus,
            entry.verdict,
            "-" if entry.nrmse is None else f"{entry.nrmse:.3e}",
            str(len(entry.result.uart_output)),
            str(entry.result.crossings_reported),
            entry.detail,
        ]
