"""Fault injection and robustness campaigns (the ``repro.fault`` subsystem).

The virtual platform's canonical industrial use: does the firmware detect a
drifted sensor?  Does a stuck ADC bit corrupt the control loop?  This package
makes those *what-if* questions executable across every layer of the stack:

* :mod:`~repro.fault.models` — the fault library: analog faults as netlist
  transforms (open/short/drift/gain degradation) that flow through all code
  generation backends, and digital faults as platform hooks (ADC/UART bus
  saboteurs, RAM and register bit flips, instruction corruption) with
  block-stepping-exact scheduled injection;
* :mod:`~repro.fault.campaign` — :class:`FaultCampaignSpec` (fault universe ×
  activation times × platform scenarios, seed-deterministic) and
  :class:`FaultCampaignRunner`, executing campaigns through the platform
  sweep multiprocessing fan-out with golden-run references and crash capture;
* :mod:`~repro.fault.report` — per-fault verdicts (silent / trace-divergent /
  firmware-detected / crash), fault-coverage matrices, equivalence collapse,
  markdown/CSV reports.

Quick start::

    from repro.circuits import build_rc_filter
    from repro.fault import (
        AdcStuckBitFault, FaultCampaignRunner, FaultCampaignSpec,
        ParameterDriftFault,
    )
    from repro.sim import SquareWave

    spec = FaultCampaignSpec(
        faults=[ParameterDriftFault("r1", 1.5), AdcStuckBitFault(bit=9)],
        activation_times=(50e-6,),
    )
    runner = FaultCampaignRunner(build_rc_filter, "out",
                                 {"vin": SquareWave(period=40e-6)})
    result = runner.run(spec, duration=200e-6)
    print(result.to_markdown())
"""

from .campaign import (
    FAULT_PARAM,
    FaultableCircuitFactory,
    FaultCampaignRunner,
    FaultCampaignSpec,
    FaultRun,
    FaultScenario,
)
from .models import (
    AdcBitFlipFault,
    AdcStuckBitFault,
    AnalogFault,
    BusSaboteur,
    DigitalFault,
    FaultModel,
    GainDegradationFault,
    InstructionCorruptionFault,
    MemoryBitFlipFault,
    ParameterDriftFault,
    RegisterTransientFault,
    ResistorOpenFault,
    ResistorShortFault,
    UartCorruptionFault,
    analog_fault_universe,
    digital_fault_universe,
)
from .report import (
    VERDICT_CRASH,
    VERDICT_DETECTED,
    VERDICT_LINT,
    VERDICT_SILENT,
    VERDICT_TRACE,
    VERDICTS,
    FaultCampaignResult,
    FaultVerdict,
    classify_run,
    trace_nrmse,
)

__all__ = [
    "AdcBitFlipFault",
    "AdcStuckBitFault",
    "AnalogFault",
    "BusSaboteur",
    "DigitalFault",
    "FAULT_PARAM",
    "FaultableCircuitFactory",
    "FaultCampaignResult",
    "FaultCampaignRunner",
    "FaultCampaignSpec",
    "FaultModel",
    "FaultRun",
    "FaultScenario",
    "FaultVerdict",
    "GainDegradationFault",
    "InstructionCorruptionFault",
    "MemoryBitFlipFault",
    "ParameterDriftFault",
    "RegisterTransientFault",
    "ResistorOpenFault",
    "ResistorShortFault",
    "UartCorruptionFault",
    "VERDICTS",
    "VERDICT_CRASH",
    "VERDICT_DETECTED",
    "VERDICT_LINT",
    "VERDICT_SILENT",
    "VERDICT_TRACE",
    "analog_fault_universe",
    "classify_run",
    "digital_fault_universe",
    "trace_nrmse",
]
