"""Shared infrastructure of the experiment harness (Tables I-III).

The paper's experiments use a 50 ns timestep, a 1 ms square wave and 100 ms
(Table I / III) or 10 s (Table II) of simulated time.  Simulating that much
virtual time with Python substrates is possible but slow, so every experiment
scales the simulated time by ``REPRO_SIM_TIME_SCALE`` (default 1/100); the
reported metrics are speed-up ratios and NRMSE values, both of which are
essentially scale-invariant.  Set ``REPRO_SIM_TIME_SCALE=1`` to run the
paper-size workloads.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..circuits.library import BenchmarkCircuit, paper_benchmarks
from ..core.flow import AbstractionFlow, AbstractionReport

#: Paper experimental parameters (Section V.A).
PAPER_TIMESTEP = 50e-9
PAPER_SQUARE_WAVE_PERIOD = 1e-3
PAPER_TABLE1_SIMULATED_TIME = 100e-3
PAPER_TABLE2_SIMULATED_TIME = 10.0
PAPER_TABLE3_SIMULATED_TIME = 100e-3

#: Default scaling of simulated time (see the module docstring).
DEFAULT_TIME_SCALE = 1.0 / 100.0


def simulated_time_scale() -> float:
    """Return the configured simulated-time scale factor."""
    value = os.environ.get("REPRO_SIM_TIME_SCALE", "")
    if not value:
        return DEFAULT_TIME_SCALE
    scale = float(value)
    if scale <= 0.0:
        raise ValueError("REPRO_SIM_TIME_SCALE must be positive")
    return scale


def scaled_duration(
    paper_duration: float,
    minimum_steps: int = 2000,
    timestep: float = PAPER_TIMESTEP,
) -> float:
    """Scale a paper duration, keeping at least ``minimum_steps`` analog steps.

    The result is snapped onto the ``timestep`` grid — an arbitrary
    ``REPRO_SIM_TIME_SCALE`` (or a non-paper timestep) would otherwise
    produce durations the fixed-step runners reject as fractional step
    counts.
    """
    duration = paper_duration * simulated_time_scale()
    steps = max(int(round(duration / timestep)), minimum_steps)
    return steps * timestep


@dataclass
class PreparedBenchmark:
    """A benchmark circuit with its abstraction already performed."""

    benchmark: BenchmarkCircuit
    report: AbstractionReport

    @property
    def name(self) -> str:
        return self.benchmark.name

    @property
    def model(self):
        return self.report.model

    @property
    def output(self) -> str:
        return self.benchmark.output_quantity


def prepare_benchmarks(
    names: list[str] | None = None,
    timestep: float = PAPER_TIMESTEP,
) -> list[PreparedBenchmark]:
    """Abstract every requested benchmark circuit (default: the paper's four)."""
    flow = AbstractionFlow(timestep)
    prepared: list[PreparedBenchmark] = []
    for benchmark in paper_benchmarks():
        if names is not None and benchmark.name not in names:
            continue
        report = flow.abstract(
            benchmark.circuit(), benchmark.output, name=benchmark.name.lower()
        )
        prepared.append(PreparedBenchmark(benchmark, report))
    return prepared


@dataclass
class ExperimentRow:
    """One row of a results table."""

    component: str
    target: str
    generation: str
    simulation_time: float
    error: float | None = None
    speedup: float | None = None
    extra: dict[str, float] = field(default_factory=dict)


@dataclass
class ExperimentTable:
    """A reproduced table: named rows plus formatting helpers."""

    title: str
    rows: list[ExperimentRow] = field(default_factory=list)

    def add(self, row: ExperimentRow) -> None:
        self.rows.append(row)

    def component_rows(self, component: str) -> list[ExperimentRow]:
        return [row for row in self.rows if row.component == component]

    def to_text(self) -> str:
        """Render the table in the same column layout as the paper."""
        header = (
            f"{'Component':10s} {'Target language':18s} {'Gen.':6s} "
            f"{'Sim. time (s)':>14s} {'Error (NRMSE)':>14s} {'Speed-up':>10s}"
        )
        lines = [self.title, "=" * len(header), header, "-" * len(header)]
        for row in self.rows:
            error = f"{row.error:.2e}" if row.error is not None else "-"
            speedup = f"{row.speedup:.2f}x" if row.speedup is not None else "-"
            lines.append(
                f"{row.component:10s} {row.target:18s} {row.generation:6s} "
                f"{row.simulation_time:14.4f} {error:>14s} {speedup:>10s}"
            )
        return "\n".join(lines)

    def as_dicts(self) -> list[dict]:
        """Rows as plain dictionaries (for JSON dumps and tests)."""
        return [
            {
                "component": row.component,
                "target": row.target,
                "generation": row.generation,
                "simulation_time": row.simulation_time,
                "error": row.error,
                "speedup": row.speedup,
                **row.extra,
            }
            for row in self.rows
        ]
