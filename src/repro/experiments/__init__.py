"""Experiment harness regenerating the paper's tables and cost studies."""

from .abstraction_cost import (
    AbstractionCostSample,
    format_sweep,
    measure_order,
    run_sweep,
)
from .common import (
    DEFAULT_TIME_SCALE,
    PAPER_TABLE1_SIMULATED_TIME,
    PAPER_TABLE2_SIMULATED_TIME,
    PAPER_TABLE3_SIMULATED_TIME,
    PAPER_TIMESTEP,
    ExperimentRow,
    ExperimentTable,
    PreparedBenchmark,
    prepare_benchmarks,
    scaled_duration,
    simulated_time_scale,
)
from .table1 import run_table1
from .table2 import abstraction_processing_times, run_table2
from .table3 import build_platform, run_table3

__all__ = [
    "AbstractionCostSample",
    "DEFAULT_TIME_SCALE",
    "ExperimentRow",
    "ExperimentTable",
    "PAPER_TABLE1_SIMULATED_TIME",
    "PAPER_TABLE2_SIMULATED_TIME",
    "PAPER_TABLE3_SIMULATED_TIME",
    "PAPER_TIMESTEP",
    "PreparedBenchmark",
    "abstraction_processing_times",
    "build_platform",
    "format_sweep",
    "measure_order",
    "prepare_benchmarks",
    "run_sweep",
    "run_table1",
    "run_table2",
    "run_table3",
    "scaled_duration",
    "simulated_time_scale",
]
