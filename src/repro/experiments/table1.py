"""Table I — simulation performance and accuracy of the models in isolation.

For every benchmark component (2IN, RC1, RC20, OA) the paper compares the
original Verilog-AMS model against the manual SystemC-AMS/ELN model and the
automatically generated SystemC-AMS/TDF, SystemC-DE and C++ models, reporting
simulation time, NRMSE against Verilog-AMS and speed-up over Verilog-AMS.
"""

from __future__ import annotations

from ..metrics.nrmse import compare_traces
from ..metrics.timing import measure
from ..sim.runners import (
    run_de_model,
    run_eln_model,
    run_python_model,
    run_reference_model,
    run_tdf_model,
)
from .common import (
    PAPER_TABLE1_SIMULATED_TIME,
    PAPER_TIMESTEP,
    ExperimentRow,
    ExperimentTable,
    PreparedBenchmark,
    prepare_benchmarks,
    scaled_duration,
)


def run_component(
    prepared: PreparedBenchmark,
    duration: float,
    timestep: float = PAPER_TIMESTEP,
    include_reference: bool = True,
) -> list[ExperimentRow]:
    """Run every target of Table I for one component and return its rows."""
    benchmark = prepared.benchmark
    model = prepared.model
    output = prepared.output
    stimuli = benchmark.stimuli
    rows: list[ExperimentRow] = []

    reference_traces = None
    reference_time = None
    if include_reference:
        reference_traces, reference_time = measure(
            lambda: run_reference_model(
                benchmark.circuit(), stimuli, duration, timestep, [output]
            )
        )
        rows.append(
            ExperimentRow(
                component=benchmark.name,
                target="Verilog-AMS",
                generation="manual",
                simulation_time=reference_time,
                error=0.0,
                speedup=1.0,
            )
        )

    def evaluate(label: str, generation: str, runner) -> None:
        traces, elapsed = measure(runner)
        error = None
        speedup = None
        if reference_traces is not None:
            error = compare_traces(reference_traces[output], traces[output])
            speedup = reference_time / elapsed if elapsed > 0 else float("inf")
        rows.append(
            ExperimentRow(
                component=benchmark.name,
                target=label,
                generation=generation,
                simulation_time=elapsed,
                error=error,
                speedup=speedup,
            )
        )

    evaluate(
        "SC-AMS/ELN",
        "manual",
        lambda: run_eln_model(benchmark.circuit(), stimuli, duration, timestep, [output]),
    )
    evaluate("SC-AMS/TDF", "algo", lambda: run_tdf_model(model, stimuli, duration))
    evaluate("SC-DE", "algo", lambda: run_de_model(model, stimuli, duration))
    evaluate("C++", "algo", lambda: run_python_model(model, stimuli, duration))
    return rows


def run_table1(
    components: list[str] | None = None,
    duration: float | None = None,
    timestep: float = PAPER_TIMESTEP,
    include_reference: bool = True,
) -> ExperimentTable:
    """Reproduce Table I (optionally restricted to some components)."""
    duration = duration if duration is not None else scaled_duration(PAPER_TABLE1_SIMULATED_TIME, timestep=timestep)
    table = ExperimentTable(
        "Table I - simulation performance and accuracy for the abstracted models in isolation"
    )
    for prepared in prepare_benchmarks(components, timestep):
        for row in run_component(prepared, duration, timestep, include_reference):
            table.add(row)
    return table
