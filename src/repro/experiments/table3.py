"""Table III — the abstracted models integrated in the complete virtual platform.

The digital part is a MIPS CPU executing firmware from memory, a UART and the
APB bus; one analog device is attached per run.  The paper compares the
Verilog-AMS co-simulation (two variants in the original table — here a single
co-simulation configuration) against the SystemC-AMS/ELN, SystemC-AMS/TDF,
SystemC-DE and pure C++ integrations, reporting platform simulation time and
speed-up over co-simulation.

Execution is delegated to the platform sweep layer
(:mod:`repro.sweep.platform`): one Table III component is a
:class:`~repro.sweep.platform.PlatformScenarioSpec` with a single nominal
analog point and one scenario per integration style, and
:func:`sweep_component` exposes the full design-space version (parameter
corners × styles × firmware variants) the one-shot table cannot show.
"""

from __future__ import annotations

from ..sweep.platform import (
    PlatformScenarioSpec,
    PlatformSweepResult,
    PlatformSweepRunner,
)
from ..vp.platform import PlatformRunResult, SmartSystemPlatform
from .common import (
    PAPER_TABLE3_SIMULATED_TIME,
    PAPER_TIMESTEP,
    ExperimentRow,
    ExperimentTable,
    PreparedBenchmark,
    prepare_benchmarks,
    scaled_duration,
)

#: Analog integration styles of Table III, in the paper's row order.
TABLE3_TARGETS = (
    ("Verilog-AMS (cosim)", "manual", "cosim"),
    ("SC-AMS/ELN", "manual", "eln"),
    ("SC-AMS/TDF", "algo", "tdf"),
    ("SC-DE", "algo", "de"),
    ("C++", "algo", "python"),
)


def build_platform(
    prepared: PreparedBenchmark,
    style: str,
    cpu_clock_hz: float = 20e6,
    timestep: float = PAPER_TIMESTEP,
) -> SmartSystemPlatform:
    """Build a platform instance with the requested analog integration style."""
    benchmark = prepared.benchmark
    platform = SmartSystemPlatform(cpu_clock_hz=cpu_clock_hz, analog_timestep=timestep)
    if style in ("python", "de", "tdf"):
        platform.attach_analog(style, benchmark.stimuli, model=prepared.model)
    elif style in ("eln", "cosim"):
        platform.attach_analog(
            style,
            benchmark.stimuli,
            circuit=benchmark.circuit(),
            output=prepared.output,
        )
    else:
        raise ValueError(f"unknown analog integration style {style!r}")
    return platform


def sweep_component(
    prepared: PreparedBenchmark,
    duration: float,
    styles: "tuple[str, ...]",
    cpu_clock_hz: float = 20e6,
    timestep: float = PAPER_TIMESTEP,
    workers: int = 1,
    record_analog: bool = False,
    parameters=None,
    firmwares=None,
) -> PlatformSweepResult:
    """Run one component's platform across ``styles`` via the sweep layer.

    ``parameters`` (any :class:`~repro.sweep.spec.SweepSpec`) and
    ``firmwares`` (variant name → assembly source) open the full design
    space around the component; by default a single nominal point with the
    default firmware reproduces the classic Table III column.  The nominal
    point reuses the abstraction ``prepared`` already carries; non-nominal
    parameter points are abstracted inside the sweep workers.
    """
    benchmark = prepared.benchmark
    runner = PlatformSweepRunner(
        benchmark.build,
        benchmark.output,
        benchmark.stimuli,
        timestep=timestep,
        cpu_clock_hz=cpu_clock_hz,
        workers=workers,
        record_analog=record_analog,
        # the harness already abstracted the nominal point; don't redo it
        premade_models=[({}, prepared.model)],
    )
    spec = PlatformScenarioSpec(
        parameters=parameters, styles=styles, firmwares=firmwares
    )
    return runner.run(spec, duration)


def run_component(
    prepared: PreparedBenchmark,
    duration: float,
    cpu_clock_hz: float = 20e6,
    timestep: float = PAPER_TIMESTEP,
    styles: tuple = TABLE3_TARGETS,
) -> tuple[list[ExperimentRow], dict[str, PlatformRunResult]]:
    """Run every platform configuration of Table III for one component.

    The first style listed is the speed-up baseline, as in the paper.
    """
    style_keys = tuple(style for _, _, style in styles)
    sweep = sweep_component(
        prepared, duration, style_keys, cpu_clock_hz=cpu_clock_hz, timestep=timestep
    )
    summary = sweep.summary_by_style()
    baseline_time = summary[style_keys[0]]["mean_time"]

    rows: list[ExperimentRow] = []
    results: dict[str, PlatformRunResult] = {}
    for (label, generation, style), result in zip(styles, sweep.results):
        entry = summary[style]
        elapsed = entry["mean_time"]
        results[style] = result
        rows.append(
            ExperimentRow(
                component=prepared.name,
                target=label,
                generation=generation,
                simulation_time=elapsed,
                speedup=baseline_time / elapsed if elapsed > 0 else float("inf"),
                extra={
                    "instructions": float(result.instructions),
                    "analog_samples": float(result.analog_samples),
                },
            )
        )
    return rows, results


def run_table3(
    components: list[str] | None = None,
    duration: float | None = None,
    cpu_clock_hz: float = 20e6,
    timestep: float = PAPER_TIMESTEP,
) -> ExperimentTable:
    """Reproduce Table III (platform simulation, speed-up over co-simulation)."""
    duration = duration if duration is not None else scaled_duration(PAPER_TABLE3_SIMULATED_TIME, timestep=timestep)
    table = ExperimentTable(
        "Table III - simulation performance for the abstracted models integrated "
        "in the virtual platform"
    )
    for prepared in prepare_benchmarks(components, timestep):
        rows, _ = run_component(prepared, duration, cpu_clock_hz, timestep)
        for row in rows:
            table.add(row)
    return table
