"""Table III — the abstracted models integrated in the complete virtual platform.

The digital part is a MIPS CPU executing firmware from memory, a UART and the
APB bus; one analog device is attached per run.  The paper compares the
Verilog-AMS co-simulation (two variants in the original table — here a single
co-simulation configuration) against the SystemC-AMS/ELN, SystemC-AMS/TDF,
SystemC-DE and pure C++ integrations, reporting platform simulation time and
speed-up over co-simulation.
"""

from __future__ import annotations

from ..metrics.timing import measure
from ..vp.platform import PlatformRunResult, SmartSystemPlatform
from .common import (
    PAPER_TABLE3_SIMULATED_TIME,
    PAPER_TIMESTEP,
    ExperimentRow,
    ExperimentTable,
    PreparedBenchmark,
    prepare_benchmarks,
    scaled_duration,
)

#: Analog integration styles of Table III, in the paper's row order.
TABLE3_TARGETS = (
    ("Verilog-AMS (cosim)", "manual", "cosim"),
    ("SC-AMS/ELN", "manual", "eln"),
    ("SC-AMS/TDF", "algo", "tdf"),
    ("SC-DE", "algo", "de"),
    ("C++", "algo", "python"),
)


def build_platform(
    prepared: PreparedBenchmark,
    style: str,
    cpu_clock_hz: float = 20e6,
    timestep: float = PAPER_TIMESTEP,
) -> SmartSystemPlatform:
    """Build a platform instance with the requested analog integration style."""
    benchmark = prepared.benchmark
    platform = SmartSystemPlatform(cpu_clock_hz=cpu_clock_hz, analog_timestep=timestep)
    if style == "python":
        platform.attach_analog_python(prepared.model, benchmark.stimuli)
    elif style == "de":
        platform.attach_analog_de(prepared.model, benchmark.stimuli)
    elif style == "tdf":
        platform.attach_analog_tdf(prepared.model, benchmark.stimuli)
    elif style == "eln":
        platform.attach_analog_eln(benchmark.circuit(), benchmark.stimuli, prepared.output)
    elif style == "cosim":
        platform.attach_analog_cosim(benchmark.circuit(), benchmark.stimuli, prepared.output)
    else:
        raise ValueError(f"unknown analog integration style {style!r}")
    return platform


def run_component(
    prepared: PreparedBenchmark,
    duration: float,
    cpu_clock_hz: float = 20e6,
    timestep: float = PAPER_TIMESTEP,
    styles: tuple = TABLE3_TARGETS,
) -> tuple[list[ExperimentRow], dict[str, PlatformRunResult]]:
    """Run every platform configuration of Table III for one component."""
    rows: list[ExperimentRow] = []
    results: dict[str, PlatformRunResult] = {}
    baseline_time: float | None = None

    for label, generation, style in styles:
        platform = build_platform(prepared, style, cpu_clock_hz, timestep)
        result, elapsed = measure(lambda: platform.run(duration))
        results[style] = result
        if baseline_time is None:
            baseline_time = elapsed
        rows.append(
            ExperimentRow(
                component=prepared.name,
                target=label,
                generation=generation,
                simulation_time=elapsed,
                speedup=baseline_time / elapsed if elapsed > 0 else float("inf"),
                extra={
                    "instructions": float(result.instructions),
                    "analog_samples": float(result.analog_samples),
                },
            )
        )
    return rows, results


def run_table3(
    components: list[str] | None = None,
    duration: float | None = None,
    cpu_clock_hz: float = 20e6,
    timestep: float = PAPER_TIMESTEP,
) -> ExperimentTable:
    """Reproduce Table III (platform simulation, speed-up over co-simulation)."""
    duration = duration if duration is not None else scaled_duration(PAPER_TABLE3_SIMULATED_TIME)
    table = ExperimentTable(
        "Table III - simulation performance for the abstracted models integrated "
        "in the virtual platform"
    )
    for prepared in prepare_benchmarks(components, timestep):
        rows, _ = run_component(prepared, duration, cpu_clock_hz, timestep)
        for row in rows:
            table.add(row)
    return table
