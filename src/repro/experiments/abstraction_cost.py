"""Abstraction-tool cost study (paper Section IV complexity claims and Section V.A).

The paper quotes per-step worst-case complexities — O(|B|) for acquisition,
O(|N|²)+O(|N|³)+O(|B|²) for enrichment, linear assemble, O(|N|³) for the
linear solution, O(|B|+|N|) for code generation, O(|N|³·|B|²) overall — and
reports a single measured figure: 7.67 s to process RC20 (22 nodes, 41
branches).  This experiment sweeps the RC-ladder order and records the time
spent in every step, so both the absolute figure and the growth trend can be
compared.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..circuits.rc_filter import build_rc_filter
from ..core.codegen import generate_all
from ..core.flow import AbstractionFlow
from ..metrics.timing import measure
from ..sweep.spec import GridSpec
from .common import PAPER_TIMESTEP


@dataclass
class AbstractionCostSample:
    """Cost measurements for one RC-ladder order."""

    order: int
    nodes: int
    branches: int
    timings: dict[str, float] = field(default_factory=dict)
    codegen_time: float = 0.0
    cone_size: int = 0

    @property
    def total_time(self) -> float:
        return sum(self.timings.values()) + self.codegen_time


def measure_order(order: int, timestep: float = PAPER_TIMESTEP) -> AbstractionCostSample:
    """Abstract one RCn instance and measure every step, including code generation."""
    circuit = build_rc_filter(order)
    flow = AbstractionFlow(timestep)
    report = flow.abstract(circuit, "out", name=f"rc{order}")
    _, codegen_time = measure(lambda: generate_all(report.model))
    assert report.acquisition is not None and report.assembled is not None
    return AbstractionCostSample(
        order=order,
        nodes=report.acquisition.node_count,
        branches=report.acquisition.branch_count,
        timings=dict(report.timings),
        codegen_time=codegen_time,
        cone_size=report.assembled.cone_size,
    )


def run_sweep(
    orders: list[int] | None = None,
    timestep: float = PAPER_TIMESTEP,
) -> list[AbstractionCostSample]:
    """Sweep the RC-ladder order (default 1..32 in octave steps).

    The order axis is enumerated through the sweep subsystem's declarative
    spec (:class:`repro.sweep.spec.GridSpec`), the same machinery batch
    simulations use to expand their scenario lists.
    """
    spec = GridSpec(axes={"order": list(orders or [1, 2, 4, 8, 16, 20, 32])})
    return [
        measure_order(int(scenario.params["order"]), timestep)
        for scenario in spec.expand()
    ]


def format_sweep(samples: list[AbstractionCostSample]) -> str:
    """Render the sweep as a text table (the abstraction-cost 'figure')."""
    header = (
        f"{'order':>6s} {'|N|':>5s} {'|B|':>5s} {'acq (ms)':>9s} {'enrich (ms)':>12s} "
        f"{'assemble (ms)':>14s} {'solve (ms)':>11s} {'codegen (ms)':>13s} {'total (ms)':>11s}"
    )
    lines = ["Abstraction-tool processing time versus circuit size (RC ladder)", header]
    for sample in samples:
        timings = sample.timings
        lines.append(
            f"{sample.order:6d} {sample.nodes:5d} {sample.branches:5d} "
            f"{timings.get('acquisition', 0.0) * 1e3:9.2f} "
            f"{timings.get('enrichment', 0.0) * 1e3:12.2f} "
            f"{timings.get('assemble', 0.0) * 1e3:14.2f} "
            f"{timings.get('solve', 0.0) * 1e3:11.2f} "
            f"{sample.codegen_time * 1e3:13.2f} "
            f"{sample.total_time * 1e3:11.2f}"
        )
    return "\n".join(lines)
