"""Table II — long simulated time, abstracted models versus SystemC-AMS/ELN.

Table II removes the Verilog-AMS baseline "to analyse behavior on a longer
simulated time (10 s)" and reports the speed-up of the generated models over
the manual SystemC-AMS/ELN implementation.  The section also reports the
abstraction-tool processing time (7.67 s for RC20, the most complex model
with 22 nodes and 41 branches); :func:`abstraction_processing_times` measures
the same quantity for our implementation.
"""

from __future__ import annotations

from ..metrics.timing import measure
from ..sim.runners import run_de_model, run_eln_model, run_python_model, run_tdf_model
from .common import (
    PAPER_TABLE2_SIMULATED_TIME,
    PAPER_TIMESTEP,
    ExperimentRow,
    ExperimentTable,
    PreparedBenchmark,
    prepare_benchmarks,
    scaled_duration,
)


def run_component(
    prepared: PreparedBenchmark,
    duration: float,
    timestep: float = PAPER_TIMESTEP,
) -> list[ExperimentRow]:
    """Run the four targets of Table II for one component."""
    benchmark = prepared.benchmark
    model = prepared.model
    output = prepared.output
    stimuli = benchmark.stimuli
    rows: list[ExperimentRow] = []

    _, eln_time = measure(
        lambda: run_eln_model(benchmark.circuit(), stimuli, duration, timestep, [output])
    )
    rows.append(
        ExperimentRow(
            component=benchmark.name,
            target="SC-AMS/ELN",
            generation="manual",
            simulation_time=eln_time,
            speedup=1.0,
        )
    )

    def evaluate(label: str, runner) -> None:
        _, elapsed = measure(runner)
        rows.append(
            ExperimentRow(
                component=benchmark.name,
                target=label,
                generation="algo",
                simulation_time=elapsed,
                speedup=eln_time / elapsed if elapsed > 0 else float("inf"),
            )
        )

    evaluate("SC-AMS/TDF", lambda: run_tdf_model(model, stimuli, duration))
    evaluate("SC-DE", lambda: run_de_model(model, stimuli, duration))
    evaluate("C++", lambda: run_python_model(model, stimuli, duration))
    return rows


def run_table2(
    components: list[str] | None = None,
    duration: float | None = None,
    timestep: float = PAPER_TIMESTEP,
) -> ExperimentTable:
    """Reproduce Table II (speed-ups relative to SystemC-AMS/ELN)."""
    duration = duration if duration is not None else scaled_duration(PAPER_TABLE2_SIMULATED_TIME, timestep=timestep)
    table = ExperimentTable(
        "Table II - simulation performance for the abstracted models, in isolation, "
        "compared to SystemC-AMS/ELN"
    )
    for prepared in prepare_benchmarks(components, timestep):
        for row in run_component(prepared, duration, timestep):
            table.add(row)
    return table


def abstraction_processing_times(
    components: list[str] | None = None,
    timestep: float = PAPER_TIMESTEP,
) -> dict[str, dict[str, float]]:
    """Measure the abstraction-tool processing time per component.

    Returns, for every component, the per-step timings (acquisition,
    enrichment, assemble, solve), the total, and the circuit size — the
    figures the paper summarises with "the abstraction tool spent 7.67 s to
    process the most complex model, i.e. RC20, which features 22 nodes and 41
    branches".
    """
    results: dict[str, dict[str, float]] = {}
    for prepared in prepare_benchmarks(components, timestep):
        report = prepared.report
        entry = dict(report.timings)
        entry["total"] = report.total_time
        if report.acquisition is not None:
            entry["nodes"] = float(report.acquisition.node_count)
            entry["branches"] = float(report.acquisition.branch_count)
        results[prepared.name] = entry
    return results
