"""Command-line entry point regenerating the paper's tables.

Installed as the ``repro-tables`` console script::

    repro-tables --table 1            # Table I  (isolation, vs Verilog-AMS)
    repro-tables --table 2            # Table II (isolation, vs SC-AMS/ELN)
    repro-tables --table 3            # Table III (virtual platform)
    repro-tables --table cost         # abstraction-cost sweep
    repro-tables --table all          # everything
    repro-tables --components RC1 OA  # restrict the component set
"""

from __future__ import annotations

import argparse
import json
import sys

from .abstraction_cost import format_sweep, run_sweep
from .common import scaled_duration, simulated_time_scale
from .table1 import run_table1
from .table2 import abstraction_processing_times, run_table2
from .table3 import run_table3


def _print_processing_times(components: list[str] | None) -> None:
    times = abstraction_processing_times(components)
    print("\nAbstraction-tool processing time (paper: 7.67 s for RC20):")
    for name, entry in times.items():
        print(
            f"  {name:5s}: total {entry['total'] * 1e3:8.2f} ms "
            f"(|N| = {int(entry.get('nodes', 0))}, |B| = {int(entry.get('branches', 0))})"
        )


def main(argv: list[str] | None = None) -> int:
    """Entry point of the ``repro-tables`` script."""
    parser = argparse.ArgumentParser(description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument(
        "--table",
        default="all",
        choices=["1", "2", "3", "cost", "all"],
        help="which table to regenerate (default: all)",
    )
    parser.add_argument(
        "--components",
        nargs="*",
        default=None,
        help="restrict to these components (2IN, RC1, RC20, OA)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the rows as JSON instead of formatted text",
    )
    arguments = parser.parse_args(argv)

    scale = simulated_time_scale()
    print(
        f"# simulated-time scale factor: {scale:g} "
        "(set REPRO_SIM_TIME_SCALE=1 for paper-size runs)",
        file=sys.stderr,
    )

    tables = []
    if arguments.table in ("1", "all"):
        tables.append(run_table1(arguments.components))
    if arguments.table in ("2", "all"):
        tables.append(run_table2(arguments.components))
    if arguments.table in ("3", "all"):
        tables.append(run_table3(arguments.components))

    if arguments.json:
        payload = {table.title: table.as_dicts() for table in tables}
        print(json.dumps(payload, indent=2))
    else:
        for table in tables:
            print()
            print(table.to_text())

    if arguments.table in ("2", "all"):
        _print_processing_times(arguments.components)

    if arguments.table in ("cost", "all"):
        samples = run_sweep()
        print()
        print(format_sweep(samples))
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    raise SystemExit(main())
