"""Static analysis for the whole reproduction stack.

Three layers share one diagnostic model (:class:`Diagnostic`):

* **Layer 1 — netlist semantic lint** (:mod:`repro.lint.netlist_rules`):
  topology and value checks over Verilog-AMS modules, generated zoo
  netlists and typed circuits, *before* the solver sees them.
* **Layer 2 — codegen artifact verification**
  (:mod:`repro.lint.artifact_rules`): contract checks over the signal-flow
  IR and the emitted python/numpy and native-C sources, *before* they run.
* **Layer 3 — determinism self-lint** (:mod:`repro.lint.selfcheck`): a
  Python AST walker over ``src/repro`` itself flagging reproducibility
  hazards (unseeded RNGs, wall clocks in key paths, non-atomic writes,
  order-dependent digests, bare ``except``).

The ``repro-lint`` command line front-end lives in :mod:`repro.lint.cli`.
"""

from .artifact_rules import (
    lint_artifact,
    lint_c_source,
    lint_model,
    lint_python_source,
)
from .baseline import baseline_keys, load_baseline, write_baseline
from .diagnostics import (
    SEVERITIES,
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    Diagnostic,
    LintError,
    LintReport,
)
from .emit import from_json, to_json, to_markdown, to_text
from .netlist_rules import lint_circuit, lint_module, lint_netlist, lint_source
from .selfcheck import lint_repo, lint_python_file

__all__ = [
    "Diagnostic",
    "LintError",
    "LintReport",
    "SEVERITIES",
    "SEVERITY_ERROR",
    "SEVERITY_INFO",
    "SEVERITY_WARNING",
    "baseline_keys",
    "from_json",
    "lint_artifact",
    "lint_c_source",
    "lint_circuit",
    "lint_model",
    "lint_module",
    "lint_netlist",
    "lint_python_file",
    "lint_python_source",
    "lint_repo",
    "lint_source",
    "load_baseline",
    "to_json",
    "to_markdown",
    "to_text",
    "write_baseline",
]
