"""The diagnostic model shared by every lint layer.

A :class:`Diagnostic` is one finding: a stable rule identifier, a severity,
a source position (1-based line/column; 0 when the object being linted has
no source text, e.g. a programmatically built circuit) and a human-oriented
message plus an optional fix hint.  A :class:`LintReport` is an ordered
collection of diagnostics with the aggregation queries the CLI, the fuzz
oracle and the dashboard need.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

from ..errors import ReproError

#: Severities, most severe first.
SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITY_INFO = "info"
SEVERITIES = (SEVERITY_ERROR, SEVERITY_WARNING, SEVERITY_INFO)

_SEVERITY_RANK = {severity: rank for rank, severity in enumerate(SEVERITIES)}


class LintError(ReproError):
    """Raised by the strict gates when lint-fatal diagnostics are found.

    Campaign workers running with ``capture_errors=True`` record this as a
    skipped-with-verdict run instead of crashing; see
    :mod:`repro.fault.campaign` and :mod:`repro.sweep.runner`.
    """

    def __init__(self, report: "LintReport") -> None:
        summary = "; ".join(
            f"{diagnostic.rule}: {diagnostic.message}"
            for diagnostic in report.errors()
        )
        super().__init__(summary or "lint failed")
        self.report = report


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding."""

    rule: str
    severity: str
    message: str
    file: str = "<memory>"
    line: int = 0
    column: int = 0
    hint: str = ""

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def key(self) -> str:
        """Stable suppression key: file, rule and message (not the position).

        Line numbers churn on unrelated edits, so baselines match on what
        was found and where (which file), not on the exact line.
        """
        return f"{self.file}::{self.rule}::{self.message}"

    def location(self) -> str:
        """Render ``file:line:column`` (omitting a missing position)."""
        if self.line:
            return f"{self.file}:{self.line}:{self.column}"
        return self.file

    def sort_key(self) -> tuple:
        return (
            self.file,
            self.line,
            self.column,
            _SEVERITY_RANK.get(self.severity, len(SEVERITIES)),
            self.rule,
            self.message,
        )


@dataclass
class LintReport:
    """An ordered collection of diagnostics with aggregation helpers."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(
        self,
        rule: str,
        severity: str,
        message: str,
        *,
        file: str = "<memory>",
        line: int = 0,
        column: int = 0,
        hint: str = "",
    ) -> Diagnostic:
        diagnostic = Diagnostic(rule, severity, message, file, line, column, hint)
        self.diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, other: "LintReport | Iterable[Diagnostic]") -> None:
        if isinstance(other, LintReport):
            self.diagnostics.extend(other.diagnostics)
        else:
            self.diagnostics.extend(other)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(sorted(self.diagnostics, key=Diagnostic.sort_key))

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __bool__(self) -> bool:
        return bool(self.diagnostics)

    # -- aggregation -----------------------------------------------------------
    def errors(self) -> list[Diagnostic]:
        return [d for d in self if d.severity == SEVERITY_ERROR]

    def warnings(self) -> list[Diagnostic]:
        return [d for d in self if d.severity == SEVERITY_WARNING]

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostic is present."""
        return not self.errors()

    def counts(self) -> dict[str, int]:
        """Diagnostic counts keyed by severity (every severity present)."""
        counts = {severity: 0 for severity in SEVERITIES}
        for diagnostic in self.diagnostics:
            counts[diagnostic.severity] += 1
        return counts

    def rules(self) -> list[str]:
        """The distinct rule ids present, sorted."""
        return sorted({diagnostic.rule for diagnostic in self.diagnostics})

    def files(self) -> list[str]:
        """The distinct files diagnostics point into, sorted."""
        return sorted({diagnostic.file for diagnostic in self.diagnostics})

    def by_rule(self, rule: str) -> list[Diagnostic]:
        return [d for d in self if d.rule == rule]

    def matrix(self) -> dict[str, dict[str, int]]:
        """Rule x severity counts (the dashboard's matrix input)."""
        table: dict[str, dict[str, int]] = {}
        for diagnostic in self.diagnostics:
            row = table.setdefault(diagnostic.rule, {})
            row[diagnostic.severity] = row.get(diagnostic.severity, 0) + 1
        return table

    # -- transformation --------------------------------------------------------
    def with_file(self, file: str) -> "LintReport":
        """Return a copy with every diagnostic re-pointed at ``file``."""
        return LintReport(
            [replace(diagnostic, file=file) for diagnostic in self.diagnostics]
        )

    def suppress(self, keys: "set[str] | frozenset[str]") -> "LintReport":
        """Return a copy without the diagnostics whose key is in ``keys``."""
        return LintReport(
            [d for d in self.diagnostics if d.key() not in keys]
        )

    def summary(self) -> str:
        counts = self.counts()
        parts = [
            f"{counts[severity]} {severity}{'s' if counts[severity] != 1 else ''}"
            for severity in SEVERITIES
            if counts[severity]
        ]
        return ", ".join(parts) if parts else "clean"
