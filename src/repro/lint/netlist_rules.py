"""Layer 1: the netlist semantic linter.

Static checks over Verilog-AMS modules (and, at a lower level, typed
:class:`~repro.network.circuit.Circuit` objects) that catch ill-posed
descriptions *before* abstraction and simulation pay for them:

* ``floating-node`` / ``ground-unreachable`` — dangling or disconnected
  topology over the conservative component graph;
* ``vsource-loop`` / ``isource-cutset`` / ``zero-value`` — singular MNA
  systems (voltage-source loops, all-current-source nodes, zero-valued
  component laws) detected before the solver sees them;
* ``nonphysical-value`` / ``suspicious-magnitude`` — negative R/C/L and
  magnitudes that force degenerate timesteps;
* ``dead-arm`` / ``unfoldable-condition`` — conditional arms that can never
  execute (literal-constant conditions) and conservative conditionals that
  do not fold at elaboration time (reusing the elaboration-time folding of
  :meth:`NetlistBuilder.active_contributions`);
* ``unused-parameter`` / ``unused-net`` / ``unused-branch`` /
  ``unused-variable`` — declarations nothing reads;
* ``mixed-description`` — the :mod:`repro.vams.classify` MIXED advisory.

Every diagnostic carries the 1-based line/column recorded by the parser.
"""

from __future__ import annotations

from ..errors import EvaluationError, VamsError
from ..expr.ast import (
    Access,
    BinaryOp,
    Constant,
    Derivative,
    Expr,
    Integral,
    Variable,
    substitute,
)
from ..expr.evaluate import evaluate
from ..expr.simplify import constant_value, simplify
from ..network.circuit import Circuit
from ..network.components import (
    VCCS,
    VCVS,
    Capacitor,
    CurrentSource,
    Inductor,
    Resistor,
    VoltageSource,
)
from ..vams.ast import (
    FLOW,
    INPUT,
    POTENTIAL,
    AnalogStatement,
    Block,
    Contribution,
    IfStatement,
    VamsModule,
)
from ..vams.classify import MIXED, classify_module
from ..vams.netlist import (
    NetlistBuilder,
    _controlled_source,
    _conductance_factor,
    _derivative_factor,
    _integral_factor,
    _is_input_reference,
    _linear_factor,
)
from ..vams.parser import parse_source
from .diagnostics import (
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    LintReport,
)

#: Plausibility bands for recognised component values (outside -> warning).
#: Values beyond these force degenerate timesteps or are almost certainly
#: unit mistakes (a farad-sized capacitor, a tera-ohm resistor).
MAGNITUDE_BANDS = {
    "resistor": (1e-3, 1e9),
    "capacitor": (1e-15, 1e-1),
    "inductor": (1e-9, 1e2),
}

#: Component kinds whose branch pins node voltages (vsource-loop analysis).
_VOLTAGE_DEFINED = ("vsource", "vcvs")

#: Component kinds that force a branch current (isource-cutset analysis).
_CURRENT_DEFINED = ("isource", "vccs")


class _Edge:
    """One conservative component (or unrecognised contribution) as a graph edge."""

    __slots__ = ("positive", "negative", "kind", "value", "line", "column", "label")

    def __init__(self, positive, negative, kind, value, line, column, label):
        self.positive = positive
        self.negative = negative
        self.kind = kind  # resistor/capacitor/inductor/vsource/isource/vcvs/vccs/edge
        self.value = value
        self.line = line
        self.column = column
        self.label = label


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------
def lint_source(source: str, file: str = "<memory>") -> LintReport:
    """Lint Verilog-AMS source text (every module it defines)."""
    report = LintReport()
    try:
        modules = parse_source(source)
    except VamsError as error:
        report.add(
            "parse-error",
            SEVERITY_ERROR,
            str(error),
            file=file,
            line=getattr(error, "line", 0),
            column=getattr(error, "column", 0),
        )
        return report
    for module in modules:
        report.extend(lint_module(module, file=file))
    return report


def lint_module(module: VamsModule, file: str = "<memory>") -> LintReport:
    """Lint a parsed module: declarations, conditionals and (when the module
    is conservative) the component graph."""
    report = LintReport()
    classification = classify_module(module)
    if classification.category == MIXED:
        statement = (
            classification.signal_flow_statements[0]
            if classification.signal_flow_statements
            else None
        )
        report.add(
            "mixed-description",
            SEVERITY_INFO,
            f"module {module.name!r} mixes conservative and signal-flow "
            "contributions; the whole module is abstracted as conservative",
            file=file,
            line=getattr(statement, "line", 0),
            column=getattr(statement, "column", 0),
            hint="split the signal-flow relation into its own module",
        )
    _lint_unused(module, report, file)
    active = _collect_active(
        module, module.analog, report, file,
        conservative=classification.is_conservative,
    )
    if classification.is_conservative:
        _lint_topology(module, active, report, file)
    return report


def lint_netlist(netlist) -> LintReport:
    """Lint a generated :class:`~repro.zoo.generate.ZooNetlist` (via its source)."""
    from ..zoo.generate import render

    return lint_source(render(netlist), file=f"<zoo:{netlist.name}>")


def lint_circuit(circuit: Circuit, file: str = "<circuit>") -> LintReport:
    """Graph-level lint of an already-built circuit (no source positions).

    This is the entry point of the fault-campaign strict gate: an injected
    fault that leaves the circuit topologically singular is reported here
    instead of crashing inside the solver.
    """
    edges = []
    sensed: set[str] = set()
    for branch in circuit:
        component = branch.component
        kind, value = "edge", None
        if isinstance(component, Resistor):
            kind, value = "resistor", component.resistance
        elif isinstance(component, Capacitor):
            kind, value = "capacitor", component.capacitance
        elif isinstance(component, Inductor):
            kind, value = "inductor", component.inductance
        elif isinstance(component, VoltageSource):
            kind = "vsource"
        elif isinstance(component, CurrentSource):
            kind = "isource"
        elif isinstance(component, (VCVS, VCCS)):
            kind = "vcvs" if isinstance(component, VCVS) else "vccs"
            for control in (
                getattr(component, "control_positive", None),
                getattr(component, "control_negative", None),
            ):
                if control:
                    sensed.add(control)
        edges.append(
            _Edge(branch.positive, branch.negative, kind, value, 0, 0, branch.name)
        )
    report = LintReport()
    _lint_values(edges, report, file)
    _lint_graph(
        edges,
        ground=circuit.ground,
        exempt=frozenset(sensed),
        positions={},
        report=report,
        file=file,
    )
    return report


# ---------------------------------------------------------------------------
# Conditionals: elaboration-time folding, dead arms
# ---------------------------------------------------------------------------
def _collect_active(
    module: VamsModule,
    statements: "list[AnalogStatement]",
    report: LintReport,
    file: str,
    conservative: bool,
) -> "list[Contribution]":
    """Collect the elaboration-time active contributions, flagging dead arms.

    Mirrors :meth:`NetlistBuilder.active_contributions`, but tolerantly: a
    condition that does not fold is reported as a diagnostic (for
    conservative modules, where state-dependent topology is an error)
    rather than raised.
    """
    parameters = module.parameter_values()
    active: list[Contribution] = []

    def walk(statements: "list[AnalogStatement]") -> None:
        for statement in statements:
            if isinstance(statement, Block):
                walk(statement.statements)
            elif isinstance(statement, IfStatement):
                walk_if(statement)
            elif isinstance(statement, Contribution):
                active.append(statement)

    def walk_if(statement: IfStatement) -> None:
        condition = statement.condition
        try:
            literal = evaluate(condition, {})
        except EvaluationError:
            literal = None
        if literal is not None:
            taken, dead = (
                ("then", "else") if literal != 0.0 else ("else", "then")
            )
            report.add(
                "dead-arm",
                SEVERITY_WARNING,
                f"condition {condition} is always "
                f"{'true' if literal != 0.0 else 'false'}; "
                f"the {dead} arm never executes",
                file=file,
                line=statement.line,
                column=statement.column,
                hint="remove the conditional or make the condition test a parameter",
            )
            walk(statement.then_branch if literal != 0.0 else statement.else_branch)
            return
        try:
            value = evaluate(condition, parameters)
        except EvaluationError as error:
            if conservative:
                report.add(
                    "unfoldable-condition",
                    SEVERITY_ERROR,
                    f"the conditional {condition} does not fold to a constant "
                    f"under the module parameters ({error})",
                    file=file,
                    line=statement.line,
                    column=statement.column,
                    hint="conservative conditionals may only test parameters",
                )
            # Analyse both arms: we cannot tell which one is active.
            walk(statement.then_branch)
            walk(statement.else_branch)
            return
        walk(statement.then_branch if value != 0.0 else statement.else_branch)

    walk(statements)
    return active


# ---------------------------------------------------------------------------
# Unused declarations
# ---------------------------------------------------------------------------
def _access_nets(name: str) -> "list[str]":
    """The net/branch argument names of a canonical access name ``V(a,b)``."""
    return [part.strip() for part in name[2:-1].split(",")]


def _lint_unused(module: VamsModule, report: LintReport, file: str) -> None:
    read_names: set[str] = set()
    access_args: set[str] = set()

    def scan_expression(expression: Expr) -> None:
        for node in expression.walk():
            if isinstance(node, Access):
                access_args.update(_access_nets(node.name))
            elif isinstance(node, Variable):
                read_names.add(node.name)

    for statement in module.iter_statements():
        if isinstance(statement, Contribution):
            scan_expression(statement.expression)
            target = statement.target
            for part in (target.positive, target.negative, target.branch):
                if part:
                    access_args.add(part)
        elif isinstance(statement, IfStatement):
            scan_expression(statement.condition)
        elif hasattr(statement, "expression"):
            scan_expression(statement.expression)

    for parameter in module.parameters:
        used = parameter.name in read_names or any(
            parameter.name in getattr(other, "uses", ())
            for other in module.parameters
            if other is not parameter
        )
        if not used:
            report.add(
                "unused-parameter",
                SEVERITY_WARNING,
                f"parameter {parameter.name!r} is never read",
                file=file,
                line=parameter.line,
                column=parameter.column,
                hint="delete the declaration or wire the parameter in",
            )

    branch_nets = {
        net for branch in module.branches for net in (branch.positive, branch.negative)
    }
    port_names = set(module.port_names())
    for branch in module.branches:
        if branch.name not in access_args:
            report.add(
                "unused-branch",
                SEVERITY_WARNING,
                f"branch {branch.name!r} is declared but never accessed",
                file=file,
                line=branch.line,
                column=branch.column,
            )
    for net in module.electrical_nets():
        if net in port_names or net in module.grounds:
            continue
        if net in access_args or net in branch_nets:
            continue
        line, column = module.declaration_positions.get(net, (0, 0))
        report.add(
            "unused-net",
            SEVERITY_WARNING,
            f"net {net!r} is declared but never connected",
            file=file,
            line=line,
            column=column,
        )
    for variable in module.real_variables:
        if variable in read_names:
            continue
        line, column = module.declaration_positions.get(variable, (0, 0))
        report.add(
            "unused-variable",
            SEVERITY_WARNING,
            f"variable {variable!r} is never read",
            file=file,
            line=line,
            column=column,
        )


# ---------------------------------------------------------------------------
# Component recognition (value rules) and graph construction
# ---------------------------------------------------------------------------
def _zero_scale(expression: Expr) -> "str | None":
    """Detect a component law collapsed by a zero factor.

    Run *before* simplification (which would fold ``0 * I(br)`` into plain
    ``0`` and lose the evidence).  Returns a description or ``None``.
    """
    for node in expression.walk():
        if not isinstance(node, BinaryOp):
            continue
        if node.op == "/":
            divisor = constant_value(simplify(node.rhs))
            if divisor == 0.0:
                return "division by zero (an infinite conductance/short)"
        if node.op == "*":
            for value_side, other in ((node.lhs, node.rhs), (node.rhs, node.lhs)):
                if constant_value(simplify(value_side)) != 0.0:
                    continue
                if any(
                    isinstance(inner, (Access, Derivative, Integral))
                    for inner in other.walk()
                ):
                    return "a zero factor collapses the component law to a short"
    return None


def _recognise(
    builder: NetlistBuilder, kind: str, branch, expression: Expr
) -> "tuple[str | None, float | None]":
    """Classify a substituted contribution like :meth:`NetlistBuilder._match_component`
    — but *without* constructing the component, so non-physical values can be
    reported instead of raising."""
    own_current = f"I({branch.name})"
    own_voltage = builder._potential_difference(branch.positive, branch.negative)

    if kind == POTENTIAL:
        factor = _linear_factor(expression, own_current)
        if factor is not None:
            return "resistor", factor
        factor = _derivative_factor(expression, Variable(own_current))
        if factor is not None:
            return "inductor", factor
        factor = _integral_factor(expression, Variable(own_current))
        if factor is not None and factor != 0.0:
            return "capacitor", 1.0 / factor
        value = constant_value(expression)
        if value is not None:
            return "vsource", None
        if _is_input_reference(expression, builder.module):
            return "vsource", None
        gain, _control = _controlled_source(expression)
        if gain is not None:
            return "vcvs", None
        return None, None

    if kind == FLOW:
        factor = _derivative_factor(expression, own_voltage)
        if factor is not None:
            return "capacitor", factor
        factor = _integral_factor(expression, own_voltage)
        if factor is not None and factor != 0.0:
            return "inductor", 1.0 / factor
        conductance = _conductance_factor(expression, own_voltage)
        if conductance is not None:
            return "resistor", 1.0 / conductance
        value = constant_value(expression)
        if value is not None:
            return "isource", None
        if _is_input_reference(expression, builder.module):
            return "isource", None
        gain, _control = _controlled_source(expression)
        if gain is not None:
            return "vccs", None
        return None, None
    return None, None


def _lint_topology(
    module: VamsModule,
    active: "list[Contribution]",
    report: LintReport,
    file: str,
) -> None:
    try:
        builder = NetlistBuilder(module)
    except VamsError:  # pragma: no cover - overrides=None cannot fail today
        return
    edges: list[_Edge] = []

    # Implicit stimulus sources on input ports (NetlistBuilder adds the same).
    for port in module.ports:
        if port.direction != INPUT or port.name == builder.ground:
            continue
        edges.append(
            _Edge(
                port.name,
                builder.ground,
                "vsource",
                None,
                port.line,
                port.column,
                f"Vsrc_{port.name}",
            )
        )

    parameter_constants = {
        name: Constant(value) for name, value in builder.parameters.items()
    }
    resolved: list = []
    for contribution in active:
        try:
            branch = builder._resolve_target(contribution.target)
        except VamsError as error:
            report.add(
                "unrecognised-contribution",
                SEVERITY_ERROR,
                str(error),
                file=file,
                line=contribution.line,
                column=contribution.column,
            )
            continue
        resolved.append((contribution, branch))

    # Nets whose potential *another* branch senses (controlled-source inputs)
    # are legitimate high-impedance probe points, not floating nodes.  Reads
    # of a branch's own terminal voltage (``I(a,b) <+ V(a,b)/R``) do not
    # count as sensing.
    sensed: set[str] = set()
    for contribution, branch in resolved:
        own = {branch.positive, branch.negative, builder.ground}
        for node in contribution.expression.walk():
            if isinstance(node, Access) and node.kind == POTENTIAL:
                nets: set[str] = set()
                for argument in _access_nets(node.name):
                    declared = module.branch_by_name(argument)
                    if declared is not None:
                        nets.update((declared.positive, declared.negative))
                    else:
                        nets.add(argument)
                if not nets <= own:
                    sensed.update(nets)

    for contribution, branch in resolved:
        edge = _Edge(
            branch.positive,
            branch.negative,
            "edge",
            None,
            contribution.line,
            contribution.column,
            branch.name,
        )
        edges.append(edge)
        raw = substitute(contribution.expression, parameter_constants)
        zero = _zero_scale(raw)
        if zero is not None:
            report.add(
                "zero-value",
                SEVERITY_ERROR,
                f"the contribution on branch {branch.name!r} degenerates: {zero}",
                file=file,
                line=contribution.line,
                column=contribution.column,
                hint="a zero-valued component makes the MNA system singular",
            )
            continue
        try:
            expression = builder._substitute_names(contribution.expression, branch)
            kind, value = _recognise(builder, contribution.target.kind, branch, expression)
        except VamsError as error:
            report.add(
                "unrecognised-contribution",
                SEVERITY_ERROR,
                str(error),
                file=file,
                line=contribution.line,
                column=contribution.column,
            )
            continue
        if kind is None:
            report.add(
                "unrecognised-contribution",
                SEVERITY_ERROR,
                f"cannot recognise the contribution on branch {branch.name!r} "
                "as a network component",
                file=file,
                line=contribution.line,
                column=contribution.column,
                hint="supported laws: R, C, L (incl. idt forms), V/I sources, VCVS, VCCS",
            )
            continue
        edge.kind = kind
        edge.value = value

    _lint_values(edges, report, file)
    _lint_graph(
        edges,
        ground=builder.ground,
        exempt=frozenset(module.port_names()) | frozenset(sensed),
        positions=module.declaration_positions,
        report=report,
        file=file,
    )


def _lint_values(edges: "list[_Edge]", report: LintReport, file: str) -> None:
    for edge in edges:
        if edge.kind not in MAGNITUDE_BANDS or edge.value is None:
            continue
        if edge.value <= 0.0:
            report.add(
                "nonphysical-value",
                SEVERITY_ERROR,
                f"{edge.kind} {edge.label!r} has non-positive value {edge.value:g}",
                file=file,
                line=edge.line,
                column=edge.column,
                hint="R, C and L must be strictly positive",
            )
            continue
        low, high = MAGNITUDE_BANDS[edge.kind]
        if not (low <= edge.value <= high):
            report.add(
                "suspicious-magnitude",
                SEVERITY_WARNING,
                f"{edge.kind} {edge.label!r} has value {edge.value:g}, outside "
                f"the plausible band [{low:g}, {high:g}]",
                file=file,
                line=edge.line,
                column=edge.column,
                hint="extreme values force degenerate timesteps; check the units",
            )


def _lint_graph(
    edges: "list[_Edge]",
    ground: str,
    exempt: "frozenset[str]",
    positions: "dict[str, tuple[int, int]]",
    report: LintReport,
    file: str,
) -> None:
    """Topology rules over the component graph (shared by module and circuit lint)."""
    if not edges:
        return

    def node_position(node: str) -> "tuple[int, int]":
        if node in positions:
            return positions[node]
        for edge in edges:
            if node in (edge.positive, edge.negative):
                return edge.line, edge.column
        return 0, 0

    nodes: set[str] = {ground}
    degree: dict[str, int] = {}
    incident: dict[str, list[_Edge]] = {}
    for edge in edges:
        for node in (edge.positive, edge.negative):
            nodes.add(node)
            degree[node] = degree.get(node, 0) + 1
            incident.setdefault(node, []).append(edge)

    # floating-node: a non-ground, non-port node with a single terminal.
    for node in sorted(nodes):
        if node == ground or node in exempt:
            continue
        if degree.get(node, 0) == 1:
            line, column = node_position(node)
            report.add(
                "floating-node",
                SEVERITY_ERROR,
                f"node {node!r} is floating: only one component terminal "
                "touches it",
                file=file,
                line=line,
                column=column,
                hint="every internal node needs at least two connections",
            )

    # ground-reachability: BFS over the full component graph.
    adjacency: dict[str, set[str]] = {}
    for edge in edges:
        adjacency.setdefault(edge.positive, set()).add(edge.negative)
        adjacency.setdefault(edge.negative, set()).add(edge.positive)
    reached = {ground}
    frontier = [ground]
    while frontier:
        current = frontier.pop()
        for neighbour in adjacency.get(current, ()):
            if neighbour not in reached:
                reached.add(neighbour)
                frontier.append(neighbour)
    for node in sorted(nodes - reached):
        if degree.get(node, 0) == 0:
            continue  # covered by unused-net
        line, column = node_position(node)
        report.add(
            "ground-unreachable",
            SEVERITY_ERROR,
            f"node {node!r} has no path to ground {ground!r}",
            file=file,
            line=line,
            column=column,
            hint="the nodal equations of a disconnected island are singular",
        )

    # vsource-loop: union-find over voltage-defined edges.
    parent: dict[str, str] = {}

    def find(node: str) -> str:
        parent.setdefault(node, node)
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    for edge in edges:
        if edge.kind not in _VOLTAGE_DEFINED:
            continue
        root_p, root_n = find(edge.positive), find(edge.negative)
        if root_p == root_n:
            report.add(
                "vsource-loop",
                SEVERITY_ERROR,
                f"voltage source {edge.label!r} closes a loop of "
                "voltage-defined branches",
                file=file,
                line=edge.line,
                column=edge.column,
                hint="a loop of voltage sources over-constrains the node voltages",
            )
            continue
        parent[root_p] = root_n

    # isource-cutset: a node whose every incident branch forces its current.
    for node in sorted(nodes):
        if node == ground:
            continue
        branches = incident.get(node, [])
        if not branches:
            continue
        if all(edge.kind in _CURRENT_DEFINED for edge in branches):
            line, column = node_position(node)
            report.add(
                "isource-cutset",
                SEVERITY_ERROR,
                f"every branch at node {node!r} is a current source; KCL "
                "over-constrains the branch currents",
                file=file,
                line=line,
                column=column,
                hint="give the node a resistive or capacitive path",
            )
