"""Layer 3: the repo determinism self-lint.

A Python ``ast``-walking checker run over ``src/repro`` itself, flagging
the hazards that would break the bit-identical-resume contract the
campaign store depends on:

* ``unseeded-rng`` — RNG construction without an explicit seed, or use of
  the global ``random``/``numpy.random`` state, anywhere outside
  ``sweep/seeds.py`` (the one designated seed-derivation module);
* ``wall-clock-in-key-path`` — reading the clock inside ``store/``: keys,
  fingerprints and digests must not depend on *when* they are computed;
* ``nonatomic-write`` — file writes inside ``store/`` that bypass
  :mod:`repro.store.atomic` (a crash mid-write would corrupt the store);
* ``dict-order-digest`` — ``json.dumps`` without ``sort_keys=True`` inside
  ``store/`` (digests must not depend on insertion order);
* ``bare-except`` — ``except:`` swallows ``KeyboardInterrupt`` and masks
  real failures anywhere in the library.

CI runs this over ``src/repro`` with an **empty** baseline: the library is
expected to stay clean, not merely grandfathered.
"""

from __future__ import annotations

import ast
from pathlib import Path

from .diagnostics import SEVERITY_ERROR, LintReport

#: Relative paths (posix) where seeded-RNG derivation is the module's job.
RNG_ALLOWED = frozenset({"sweep/seeds.py"})

#: Relative path prefix of the store-key/fingerprint code paths.
STORE_PREFIX = "store/"

#: The one module allowed to write files non-atomically (it implements atomic).
ATOMIC_MODULE = "store/atomic.py"

_GLOBAL_RANDOM_FUNCTIONS = frozenset(
    {
        "random.random",
        "random.randint",
        "random.randrange",
        "random.uniform",
        "random.gauss",
        "random.choice",
        "random.choices",
        "random.sample",
        "random.shuffle",
        "random.seed",
        "random.getrandbits",
    }
)

_WALL_CLOCK_FUNCTIONS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.clock_gettime",
    }
)

#: numpy.random module-level helpers that are deterministic constructors,
#: not draws from the unseeded global state.
_NP_RANDOM_SAFE = frozenset(
    {"default_rng", "SeedSequence", "Generator", "BitGenerator", "PCG64", "Philox"}
)


def _dotted(node: ast.AST) -> str:
    """Render a call target as a dotted name (``np.random.default_rng``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _write_mode(call: ast.Call) -> bool:
    """True when an ``open()``-style call requests a writing mode."""
    mode: "ast.expr | None" = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return False
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return any(flag in mode.value for flag in "wax+")
    return False


def lint_python_file(
    path: "str | Path", root: "str | Path | None" = None
) -> LintReport:
    """Self-lint one python source file.

    ``root`` anchors the relative path used both for scoping (which rules
    apply where) and for the diagnostic's ``file`` field.
    """
    path = Path(path)
    relative = (
        path.relative_to(root).as_posix() if root is not None else path.as_posix()
    )
    report = LintReport()
    try:
        tree = ast.parse(path.read_text())
    except SyntaxError as error:  # pragma: no cover - the repo always parses
        report.add(
            "py-syntax-error",
            SEVERITY_ERROR,
            f"file does not parse: {error.msg}",
            file=relative,
            line=error.lineno or 0,
            column=error.offset or 1,
        )
        return report

    in_store = relative.startswith(STORE_PREFIX)
    rng_allowed = relative in RNG_ALLOWED

    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            report.add(
                "bare-except",
                SEVERITY_ERROR,
                "bare 'except:' swallows KeyboardInterrupt and masks failures",
                file=relative,
                line=node.lineno,
                column=node.col_offset + 1,
                hint="catch a specific exception type (ReproError at widest)",
            )
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        tail = dotted.rsplit(".", 1)[-1]

        if not rng_allowed:
            if tail == "default_rng" and not node.args and not node.keywords:
                report.add(
                    "unseeded-rng",
                    SEVERITY_ERROR,
                    "default_rng() without a seed is non-reproducible",
                    file=relative,
                    line=node.lineno,
                    column=node.col_offset + 1,
                    hint="derive the seed via repro.sweep.seeds",
                )
            elif dotted == "random.Random" and not node.args:
                report.add(
                    "unseeded-rng",
                    SEVERITY_ERROR,
                    "random.Random() without a seed is non-reproducible",
                    file=relative,
                    line=node.lineno,
                    column=node.col_offset + 1,
                    hint="derive the seed via repro.sweep.seeds",
                )
            elif dotted in _GLOBAL_RANDOM_FUNCTIONS:
                report.add(
                    "unseeded-rng",
                    SEVERITY_ERROR,
                    f"{dotted}() draws from the unseeded global RNG state",
                    file=relative,
                    line=node.lineno,
                    column=node.col_offset + 1,
                    hint="use a Generator from repro.sweep.seeds instead",
                )
            elif (
                ".random." in f".{dotted}"
                and dotted.split(".")[-2:][0] == "random"
                and dotted.split(".")[0] in ("np", "numpy")
                and tail not in _NP_RANDOM_SAFE
            ):
                report.add(
                    "unseeded-rng",
                    SEVERITY_ERROR,
                    f"{dotted}() uses numpy's global RNG state",
                    file=relative,
                    line=node.lineno,
                    column=node.col_offset + 1,
                    hint="use a Generator from repro.sweep.seeds instead",
                )

        if in_store:
            if dotted in _WALL_CLOCK_FUNCTIONS or (
                "datetime" in dotted and tail in ("now", "utcnow", "today")
            ):
                report.add(
                    "wall-clock-in-key-path",
                    SEVERITY_ERROR,
                    f"{dotted}() makes store keys/fingerprints depend on the "
                    "wall clock",
                    file=relative,
                    line=node.lineno,
                    column=node.col_offset + 1,
                    hint="store paths and digests must be time-independent",
                )
            if relative != ATOMIC_MODULE:
                if (tail == "open" and _write_mode(node)) or tail in (
                    "write_text",
                    "write_bytes",
                ):
                    report.add(
                        "nonatomic-write",
                        SEVERITY_ERROR,
                        f"{dotted or tail}() writes a file without going "
                        "through store.atomic",
                        file=relative,
                        line=node.lineno,
                        column=node.col_offset + 1,
                        hint="use atomic_write_text/bytes/json (crash-safe rename)",
                    )
            if tail == "dumps" and dotted in ("json.dumps", "dumps"):
                sorted_keys = any(
                    keyword.arg == "sort_keys"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                    for keyword in node.keywords
                )
                if not sorted_keys:
                    report.add(
                        "dict-order-digest",
                        SEVERITY_ERROR,
                        "json.dumps without sort_keys=True makes digests "
                        "depend on dict insertion order",
                        file=relative,
                        line=node.lineno,
                        column=node.col_offset + 1,
                        hint="pass sort_keys=True (see store.keys.canonical_json)",
                    )
    return report


def lint_repo(root: "str | Path") -> LintReport:
    """Self-lint every ``*.py`` file under ``root`` (deterministic order)."""
    root = Path(root)
    report = LintReport()
    for path in sorted(root.rglob("*.py")):
        report.extend(lint_python_file(path, root=root))
    return report
