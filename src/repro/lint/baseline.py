"""Baseline (suppression) files: existing debt must not block CI.

A baseline is a JSON file listing suppression keys
(``file::rule::message``, see :meth:`Diagnostic.key`).  ``repro-lint
--baseline FILE`` subtracts those keys before deciding the exit status, so
adopting a new rule never breaks the build for pre-existing findings;
``--write-baseline FILE`` records the current findings as accepted debt.
The determinism self-lint is expected to hold with an *empty* baseline.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..store.atomic import atomic_write_text
from .diagnostics import LintReport


def baseline_keys(report: LintReport) -> list[str]:
    """The sorted, de-duplicated suppression keys of a report."""
    return sorted({diagnostic.key() for diagnostic in report.diagnostics})


def write_baseline(path: "str | Path", report: LintReport) -> Path:
    """Persist the report's keys as an accepted-debt baseline file."""
    path = Path(path)
    payload = {"version": 1, "suppress": baseline_keys(report)}
    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_baseline(path: "str | Path | None") -> frozenset[str]:
    """Load suppression keys; a missing or ``None`` path is an empty baseline."""
    if path is None:
        return frozenset()
    path = Path(path)
    if not path.exists():
        return frozenset()
    payload = json.loads(path.read_text())
    keys = payload.get("suppress", [])
    if not isinstance(keys, list):
        raise ValueError(f"malformed baseline file {path}: 'suppress' must be a list")
    return frozenset(str(key) for key in keys)
