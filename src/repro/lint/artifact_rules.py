"""Layer 2: the codegen artifact verifier.

Static contract checks over what the abstraction pipeline *produces* —
the :class:`~repro.core.signalflow.SignalFlowModel` IR, the emitted
python/numpy batch sources and the native-C translation unit — run before
any of it executes.  The fuzz oracle runs these as a pre-execution stage
(:mod:`repro.zoo.oracle`), and the sweep/fault runners can enable them as
a strict gate.

Rules:

* ``ir-undefined-reference`` / ``ir-state-never-computed`` /
  ``ir-output-never-computed`` — the :meth:`SignalFlowModel.validate`
  contract, reported as diagnostics instead of raised;
* ``ir-duplicate-target`` — the same quantity assigned twice in one step;
* ``ir-nonfinite-constant`` / ``ir-nonpositive-timestep`` — NaN/Inf
  literals baked into the model, or a timestep the integrators cannot use;
* ``py-syntax-error`` / ``py-nonfinite-literal`` /
  ``py-state-write-before-read`` — generated python/numpy sources;
* ``c-undefined-identifier`` / ``c-nonfinite-literal`` — the generated C
  translation unit (identifier closure against its own declarations and
  the ``math.h`` surface);
* ``artifact-shape-mismatch`` / ``artifact-nonfinite-data`` — per-scenario
  parameter and state arrays of a batch artifact.
"""

from __future__ import annotations

import ast as python_ast
import math
import re

from ..core.signalflow import TIME_VARIABLE, SignalFlowModel
from ..expr.ast import Constant
from .diagnostics import SEVERITY_ERROR, SEVERITY_WARNING, LintReport

# ---------------------------------------------------------------------------
# SignalFlowModel IR
# ---------------------------------------------------------------------------
def lint_model(model: SignalFlowModel, file: str = "<model>") -> LintReport:
    """Contract checks over a signal-flow model, as diagnostics."""
    report = LintReport()
    known: set[str] = set(model.inputs) | {TIME_VARIABLE}
    targets = list(model.assignment_targets())
    target_set = set(targets)

    seen: set[str] = set()
    for target in targets:
        if target in seen:
            report.add(
                "ir-duplicate-target",
                SEVERITY_ERROR,
                f"quantity {target!r} is assigned more than once per step",
                file=file,
            )
        seen.add(target)

    for assignment in model.assignments:
        for name in assignment.expression.variables():
            if name in known or name in target_set:
                continue
            report.add(
                "ir-undefined-reference",
                SEVERITY_ERROR,
                f"assignment {assignment.target!r} references the unknown "
                f"quantity {name!r}",
                file=file,
            )
        for node in assignment.expression.walk():
            if isinstance(node, Constant) and not math.isfinite(node.value):
                report.add(
                    "ir-nonfinite-constant",
                    SEVERITY_ERROR,
                    f"assignment {assignment.target!r} contains the "
                    f"non-finite constant {node.value!r}",
                    file=file,
                )
        known.add(assignment.target)

    for state in model.referenced_states():
        if state not in target_set and state not in model.inputs:
            report.add(
                "ir-state-never-computed",
                SEVERITY_ERROR,
                f"state variable {state!r} is referenced but never computed",
                file=file,
            )
    for output in model.outputs:
        if output not in target_set and output not in model.inputs:
            report.add(
                "ir-output-never-computed",
                SEVERITY_ERROR,
                f"output {output!r} is never computed",
                file=file,
            )
    for state, value in model.initial_state.items():
        if not math.isfinite(value):
            report.add(
                "ir-nonfinite-constant",
                SEVERITY_ERROR,
                f"initial state of {state!r} is non-finite ({value!r})",
                file=file,
            )
    if not (model.timestep > 0.0 and math.isfinite(model.timestep)):
        report.add(
            "ir-nonpositive-timestep",
            SEVERITY_ERROR,
            f"timestep {model.timestep!r} is unusable for discretisation",
            file=file,
        )
    return report


# ---------------------------------------------------------------------------
# Generated python/numpy sources
# ---------------------------------------------------------------------------
_NONFINITE_NAMES = ("nan", "inf", "NAN", "INFINITY", "NaN", "Inf")


def lint_python_source(code: str, file: str = "<generated.py>") -> LintReport:
    """Static checks over an emitted python/numpy batch kernel."""
    report = LintReport()
    try:
        tree = python_ast.parse(code)
    except SyntaxError as error:
        report.add(
            "py-syntax-error",
            SEVERITY_ERROR,
            f"generated python does not parse: {error.msg}",
            file=file,
            line=error.lineno or 0,
            column=(error.offset or 1),
        )
        return report

    for node in python_ast.walk(tree):
        if isinstance(node, python_ast.Constant) and isinstance(node.value, float):
            if not math.isfinite(node.value):
                report.add(
                    "py-nonfinite-literal",
                    SEVERITY_ERROR,
                    f"non-finite literal {node.value!r} in generated python",
                    file=file,
                    line=node.lineno,
                    column=node.col_offset + 1,
                )
        if isinstance(node, python_ast.Call):
            func = node.func
            if (
                isinstance(func, python_ast.Name)
                and func.id == "float"
                and node.args
                and isinstance(node.args[0], python_ast.Constant)
                and str(node.args[0].value).strip().lower() in ("nan", "inf", "-inf")
            ):
                report.add(
                    "py-nonfinite-literal",
                    SEVERITY_ERROR,
                    f"non-finite literal float({node.args[0].value!r}) in "
                    "generated python",
                    file=file,
                    line=node.lineno,
                    column=node.col_offset + 1,
                )

    # State contract: inside every method, each ``self._prev_*`` slot must be
    # read before it is overwritten — writing first would silently discard
    # the previous-timestep value the discretisation depends on.
    for function in python_ast.walk(tree):
        if not isinstance(function, (python_ast.FunctionDef, python_ast.AsyncFunctionDef)):
            continue
        if function.name in ("__init__", "reset"):
            continue  # initializers legitimately seed the state slots
        accesses: list[tuple[int, int, str, bool]] = []
        for node in python_ast.walk(function):
            if (
                isinstance(node, python_ast.Attribute)
                and isinstance(node.value, python_ast.Name)
                and node.value.id == "self"
                and node.attr.startswith("_prev_")
            ):
                is_store = isinstance(node.ctx, python_ast.Store)
                accesses.append((node.lineno, node.col_offset, node.attr, is_store))
        first: dict[str, bool] = {}
        for lineno, col, attr, is_store in sorted(accesses):
            if attr not in first:
                first[attr] = is_store
                if is_store:
                    report.add(
                        "py-state-write-before-read",
                        SEVERITY_ERROR,
                        f"state slot {attr!r} is written before it is read in "
                        f"{function.name}(); the previous-timestep value is lost",
                        file=file,
                        line=lineno,
                        column=col + 1,
                    )
    return report


# ---------------------------------------------------------------------------
# Generated C translation unit
# ---------------------------------------------------------------------------
_C_KEYWORDS = frozenset(
    "void int const double float char long short unsigned signed for if else "
    "while do return static inline extern struct union enum sizeof typedef "
    "break continue switch case default goto volatile register restrict".split()
)

#: The math.h surface the code generator may call.
_C_MATH = frozenset(
    "sin cos tan asin acos atan atan2 sinh cosh tanh exp log log10 log2 sqrt "
    "fabs fmin fmax pow floor ceil fmod copysign expm1 log1p cbrt hypot".split()
)

_C_IDENTIFIER = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_C_DECLARATION = re.compile(
    r"\b(?:const\s+)?(?:double|int|float|long|unsigned)\s*\*?\s*([A-Za-z_][A-Za-z0-9_]*)"
)


def _strip_c_noise(code: str) -> str:
    """Remove comments, string literals and preprocessor lines."""
    code = re.sub(r"/\*.*?\*/", " ", code, flags=re.DOTALL)
    code = re.sub(r"//[^\n]*", " ", code)
    code = re.sub(r'"(?:\\.|[^"\\])*"', " ", code)
    lines = [
        line for line in code.splitlines() if not line.lstrip().startswith("#")
    ]
    return "\n".join(lines)


def lint_c_source(code: str, file: str = "<generated.c>") -> LintReport:
    """Identifier closure and literal checks over a generated C translation unit."""
    report = LintReport()
    body = _strip_c_noise(code)

    declared: set[str] = set(_C_DECLARATION.findall(body))
    # Function definitions declare their own name.
    declared.update(
        match.group(1)
        for match in re.finditer(r"\b([A-Za-z_][A-Za-z0-9_]*)\s*\([^;]*\)\s*\{", body)
    )

    for lineno, line in enumerate(body.splitlines(), start=1):
        for match in _C_IDENTIFIER.finditer(line):
            name = match.group(0)
            if name in _NONFINITE_NAMES:
                report.add(
                    "c-nonfinite-literal",
                    SEVERITY_ERROR,
                    f"non-finite literal {name!r} in the generated C source",
                    file=file,
                    line=lineno,
                    column=match.start() + 1,
                )
                continue
            if name in _C_KEYWORDS or name in _C_MATH or name in declared:
                continue
            report.add(
                "c-undefined-identifier",
                SEVERITY_ERROR,
                f"identifier {name!r} is used but never declared in the "
                "translation unit",
                file=file,
                line=lineno,
                column=match.start() + 1,
            )
    return report


# ---------------------------------------------------------------------------
# Batch artifacts (code + per-scenario arrays)
# ---------------------------------------------------------------------------
def lint_artifact(artifact, file: str = "<artifact>") -> LintReport:
    """Shape and finiteness checks over a compiled batch artifact.

    Works for both the numpy :class:`BatchArtifact` and the native
    :class:`NativeArtifact` (same field contract); the python source of the
    artifact is linted too.
    """
    import numpy as np

    report = LintReport()
    n_scenarios = int(artifact.n_scenarios)
    parameters = np.asarray(artifact.parameters)
    initial_state = np.asarray(artifact.initial_state)
    if parameters.ndim != 2 or parameters.shape[1] != n_scenarios:
        report.add(
            "artifact-shape-mismatch",
            SEVERITY_ERROR,
            f"parameter array has shape {parameters.shape}, expected "
            f"(n_parameters, {n_scenarios})",
            file=file,
        )
    if initial_state.ndim != 2 or initial_state.shape[1] != n_scenarios:
        report.add(
            "artifact-shape-mismatch",
            SEVERITY_ERROR,
            f"initial-state array has shape {initial_state.shape}, expected "
            f"(n_states, {n_scenarios})",
            file=file,
        )
    if parameters.size and not np.isfinite(parameters).all():
        report.add(
            "artifact-nonfinite-data",
            SEVERITY_ERROR,
            "parameter array contains non-finite values",
            file=file,
        )
    if initial_state.size and not np.isfinite(initial_state).all():
        report.add(
            "artifact-nonfinite-data",
            SEVERITY_ERROR,
            "initial-state array contains non-finite values",
            file=file,
        )
    code = getattr(artifact, "code", None)
    if isinstance(code, str):
        report.extend(lint_python_source(code, file=file))
    if parameters.ndim == 2 and parameters.shape[1] == n_scenarios:
        n_parameters = getattr(artifact, "n_parameters", None)
        if n_parameters is not None and parameters.shape[0] != n_parameters:
            report.add(
                "artifact-shape-mismatch",
                SEVERITY_WARNING,
                f"parameter array has {parameters.shape[0]} rows but the "
                f"artifact declares {n_parameters} parameters",
                file=file,
            )
    return report
