"""``repro-lint``: the static-analysis command line front-end.

Lints Verilog-AMS netlists (files, directories of ``*.va``, the paper
benchmark sources, generated zoo netlists) and, with ``--selfcheck``, runs
the determinism self-lint over a python source tree.

Exit status: 0 when no unsuppressed error remains, 1 when errors were
found, 2 on bad arguments.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .baseline import load_baseline, write_baseline
from .diagnostics import LintReport
from .emit import to_json, to_markdown, to_text
from .netlist_rules import lint_source
from .selfcheck import lint_repo


def _collect_va_files(paths: "list[str]") -> "list[Path]":
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.va")))
        else:
            files.append(path)
    return files


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Static analysis: netlist semantic lint over Verilog-AMS "
            "sources, plus the repo determinism self-lint."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="*.va files or directories to lint (directories recurse)",
    )
    parser.add_argument(
        "--benchmarks",
        action="store_true",
        help="lint the Verilog-AMS sources of the paper benchmark circuits",
    )
    parser.add_argument(
        "--generated",
        type=int,
        default=0,
        metavar="N",
        help="lint N generated zoo netlists (see --seed)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for --generated netlists (default 0)",
    )
    parser.add_argument(
        "--selfcheck",
        metavar="DIR",
        default=None,
        help="run the determinism self-lint over a python source tree",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "markdown"),
        default="text",
        help="stdout format (default text)",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="additionally write the JSON report to FILE (dashboard input)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="suppress the findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="record the current findings as accepted debt and exit 0",
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if not args.paths and not args.benchmarks and not args.generated and not args.selfcheck:
        print(
            "repro-lint: nothing to lint (give paths, --benchmarks, "
            "--generated N or --selfcheck DIR)",
            file=sys.stderr,
        )
        return 2

    report = LintReport()
    for path in _collect_va_files(args.paths):
        if not path.exists():
            print(f"repro-lint: no such file: {path}", file=sys.stderr)
            return 2
        report.extend(lint_source(path.read_text(), file=str(path)))

    if args.benchmarks:
        from ..circuits import paper_benchmarks

        for benchmark in paper_benchmarks():
            report.extend(
                lint_source(
                    benchmark.vams_source, file=f"<benchmark:{benchmark.name}>"
                )
            )

    if args.generated:
        from ..zoo.generate import generate_netlist
        from .netlist_rules import lint_netlist

        for index in range(args.generated):
            report.extend(lint_netlist(generate_netlist(args.seed, index)))

    if args.selfcheck:
        root = Path(args.selfcheck)
        if not root.is_dir():
            print(f"repro-lint: no such directory: {root}", file=sys.stderr)
            return 2
        report.extend(lint_repo(root))

    if args.write_baseline:
        path = write_baseline(args.write_baseline, report)
        print(f"repro-lint: wrote baseline with {len(report)} findings to {path}")
        return 0

    suppressed_keys = load_baseline(args.baseline)
    visible = report.suppress(suppressed_keys)
    suppressed = len(report) - len(visible)

    if args.format == "json":
        print(to_json(visible))
    elif args.format == "markdown":
        print(to_markdown(visible), end="")
    elif visible:
        print(to_text(visible))

    if args.json:
        Path(args.json).write_text(to_json(visible) + "\n")

    trailer = f"repro-lint: {visible.summary()}"
    if suppressed:
        trailer += f" ({suppressed} suppressed by baseline)"
    print(trailer, file=sys.stderr)
    return 0 if visible.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
