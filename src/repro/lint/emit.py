"""Emitters for lint reports: plain text, JSON and markdown.

The JSON form is the machine interface (consumed by the dashboard's lint
section and by the baseline workflow) and round-trips losslessly through
:func:`from_json`.  The markdown form is for humans and CI summaries; any
hostile characters in file or rule names (pipes, backticks, newlines,
angle brackets) are escaped so a crafted netlist name cannot break the
table or inject markup.
"""

from __future__ import annotations

import json

from .diagnostics import SEVERITIES, Diagnostic, LintReport

#: Schema version stamped into the JSON payload.
JSON_VERSION = 1


def to_text(report: LintReport) -> str:
    """Render one ``file:line:column: severity[rule] message`` line per finding."""
    lines = []
    for diagnostic in report:
        line = (
            f"{diagnostic.location()}: {diagnostic.severity}"
            f"[{diagnostic.rule}] {diagnostic.message}"
        )
        if diagnostic.hint:
            line += f" (hint: {diagnostic.hint})"
        lines.append(line)
    return "\n".join(lines)


def to_json(report: LintReport, indent: "int | None" = 2) -> str:
    """Serialise the report deterministically (sorted keys, sorted findings)."""
    payload = {
        "version": JSON_VERSION,
        "summary": report.counts(),
        "diagnostics": [
            {
                "rule": diagnostic.rule,
                "severity": diagnostic.severity,
                "message": diagnostic.message,
                "file": diagnostic.file,
                "line": diagnostic.line,
                "column": diagnostic.column,
                "hint": diagnostic.hint,
            }
            for diagnostic in report
        ],
    }
    return json.dumps(payload, indent=indent, sort_keys=True)


def from_json(text: str) -> LintReport:
    """Parse a payload produced by :func:`to_json` back into a report."""
    payload = json.loads(text)
    version = payload.get("version")
    if version != JSON_VERSION:
        raise ValueError(f"unsupported lint report version {version!r}")
    report = LintReport()
    for entry in payload.get("diagnostics", []):
        report.diagnostics.append(
            Diagnostic(
                rule=entry["rule"],
                severity=entry["severity"],
                message=entry["message"],
                file=entry.get("file", "<memory>"),
                line=int(entry.get("line", 0)),
                column=int(entry.get("column", 0)),
                hint=entry.get("hint", ""),
            )
        )
    return report


def _escape_cell(text: str) -> str:
    """Escape a value for use inside a markdown table cell."""
    replacements = (
        ("\\", "\\\\"),
        ("|", "\\|"),
        ("`", "\\`"),
        ("<", "&lt;"),
        (">", "&gt;"),
        ("\r", " "),
        ("\n", " "),
    )
    for old, new in replacements:
        text = text.replace(old, new)
    return text


def to_markdown(report: LintReport, title: str = "Lint report") -> str:
    """Render a human-readable markdown summary with escaped names."""
    lines = [f"# {title}", ""]
    counts = report.counts()
    lines.append(
        "**"
        + " · ".join(f"{counts[severity]} {severity}" for severity in SEVERITIES)
        + "**"
    )
    lines.append("")
    if not report:
        lines.append("No findings.")
        return "\n".join(lines) + "\n"
    lines.append("| Location | Severity | Rule | Message | Hint |")
    lines.append("| --- | --- | --- | --- | --- |")
    for diagnostic in report:
        lines.append(
            "| "
            + " | ".join(
                _escape_cell(cell)
                for cell in (
                    diagnostic.location(),
                    diagnostic.severity,
                    diagnostic.rule,
                    diagnostic.message,
                    diagnostic.hint or "—",
                )
            )
            + " |"
        )
    return "\n".join(lines) + "\n"
