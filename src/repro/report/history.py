"""Cross-commit benchmark history: ``benchmarks/history/<name>.jsonl``.

``BENCH_<name>.json`` snapshots only ever hold the *latest* record, so a
trend line drawn from them has one point.  The history directory keeps one
JSONL file per benchmark with **one line per commit** — ``repro-bench
--publish`` appends the fresh record (replacing any earlier line recorded
at the same commit, so re-publishing never duplicates a point), published
atomically through the shared :mod:`repro.store.atomic` primitive.

:func:`trend_series` turns a benchmark's history into per-metric point
lists with regression markers: each consecutive pair of records is run
through :func:`~repro.perf.baseline.compare_records`, and a point that
regressed versus its predecessor carries the regression description.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..perf.baseline import BenchmarkRecord, PerfError, compare_records
from ..store.atomic import atomic_write_text

#: The in-repo history directory ``repro-bench --publish`` appends to.
DEFAULT_HISTORY_DIR = "benchmarks/history"


def history_path(directory: "str | Path", name: str) -> Path:
    return Path(directory) / f"{name}.jsonl"


def load_history_file(path: Path) -> list[BenchmarkRecord]:
    """Every record in one history file, in file (commit) order."""
    records: list[BenchmarkRecord] = []
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return records
    except OSError as exc:
        raise PerfError(f"cannot read benchmark history {path}: {exc}") from exc
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            records.append(BenchmarkRecord.from_json(line))
        except PerfError as exc:
            raise PerfError(
                f"malformed history line {path}:{line_number}: {exc}"
            ) from exc
    return records


def load_history(directory: "str | Path") -> dict[str, list[BenchmarkRecord]]:
    """Benchmark name → commit-ordered records for every ``*.jsonl`` file."""
    directory = Path(directory)
    history: dict[str, list[BenchmarkRecord]] = {}
    if not directory.exists():
        return history
    for path in sorted(directory.glob("*.jsonl")):
        records = load_history_file(path)
        if records:
            history[path.stem] = records
    return history


def append_history(record: BenchmarkRecord, directory: "str | Path") -> Path:
    """Append ``record`` to its benchmark's history (one line per commit).

    Re-publishing from the same commit *replaces* that commit's line instead
    of appending a duplicate point, so a trend chart's x axis stays one
    point per commit.  Records without git provenance (``git_commit`` is
    ``None``) always append — there is no identity to collapse on.  The
    whole file is rewritten through the atomic write-temp-then-replace
    primitive, so a crash mid-publish never truncates the history.
    """
    path = history_path(directory, record.name)
    existing = load_history_file(path)
    commit = record.meta.get("git_commit")
    if commit is not None:
        existing = [
            entry for entry in existing if entry.meta.get("git_commit") != commit
        ]
    existing.append(record)
    lines = [
        json.dumps(json.loads(entry.to_json()), sort_keys=True) for entry in existing
    ]
    return atomic_write_text(path, "\n".join(lines) + "\n")


@dataclass
class TrendPoint:
    """One commit's value of one metric (plus any regression vs the prior)."""

    label: str
    value: float
    regression: "str | None" = None


@dataclass
class MetricTrend:
    """One metric's cross-commit series."""

    benchmark: str
    metric: str
    points: list[TrendPoint] = field(default_factory=list)


def _short_label(record: BenchmarkRecord, index: int) -> str:
    commit = record.meta.get("git_commit")
    if isinstance(commit, str) and commit:
        label = commit[:8]
        if record.meta.get("git_dirty"):
            label += "+"
        return label
    return f"run {index}"


def trend_series(
    name: str,
    records: "list[BenchmarkRecord]",
    tolerance: float = 0.30,
) -> list[MetricTrend]:
    """Per-metric trend series over one benchmark's history.

    Consecutive records are compared with
    :func:`~repro.perf.baseline.compare_records`; a metric that regressed
    beyond ``tolerance`` at a commit gets that point's ``regression`` set
    to the human-readable description (the dashboard renders it as a
    critical marker).  Records whose workload size differs
    (``meta["smoke"]``) from their predecessor are not compared — smoke and
    full runs are different workloads.
    """
    metrics: dict[str, MetricTrend] = {}
    previous: "BenchmarkRecord | None" = None
    for index, record in enumerate(records):
        regressions: dict[str, str] = {}
        if previous is not None and previous.meta.get("smoke") == record.meta.get(
            "smoke"
        ):
            for regression in compare_records(previous, record, tolerance):
                regressions[regression.metric] = regression.describe()
        label = _short_label(record, index)
        for metric, value in sorted(record.metrics.items()):
            trend = metrics.setdefault(metric, MetricTrend(name, metric))
            trend.points.append(
                TrendPoint(label, float(value), regressions.get(metric))
            )
        previous = record
    return list(metrics.values())


def merge_latest(
    history: "dict[str, list[BenchmarkRecord]]",
    latest: "dict[str, BenchmarkRecord]",
) -> dict[str, list[BenchmarkRecord]]:
    """History extended with the latest snapshots (``BENCH_*.json``).

    A snapshot recorded at a commit already present in the history replaces
    that line's record (the snapshot is the same measurement, republished);
    otherwise it appends as the newest point.  Benchmarks that only have a
    snapshot produce a one-point series.
    """
    merged: dict[str, list[BenchmarkRecord]] = {
        name: list(records) for name, records in history.items()
    }
    for name, record in latest.items():
        series = merged.setdefault(name, [])
        commit = record.meta.get("git_commit")
        if commit is not None:
            series[:] = [
                entry for entry in series if entry.meta.get("git_commit") != commit
            ]
        series.append(record)
    return merged
