"""Adapters: live result objects → dashboard sections.

Each ``*_section`` function accepts one of the repo's result types —
:class:`~repro.sweep.results.SweepResult`,
:class:`~repro.sweep.platform.PlatformSweepResult`,
:class:`~repro.fault.report.FaultCampaignResult`,
:class:`~repro.obs.telemetry.TelemetryReport`, benchmark history — and
returns a :class:`Section`: an anchor slug, a title, and a self-contained
HTML body built from the :mod:`repro.report.svg` primitives.  The
:class:`~repro.report.dashboard.Dashboard` assembles sections into one
page; this module owns *what* each result type shows, not page chrome.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

import numpy as np

from .svg import (
    esc as _esc,
    coverage_matrix_table,
    data_table,
    envelope_chart,
    kv_table,
    stat_tile,
    tile_row,
    timeline_chart,
    trend_chart,
    warning_banner,
)
from .history import MetricTrend, trend_series

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..fault.report import FaultCampaignResult
    from ..obs.telemetry import TelemetryReport
    from ..perf.baseline import BenchmarkRecord
    from ..sweep.platform import PlatformSweepResult
    from ..sweep.results import SweepResult


@dataclass
class Section:
    """One dashboard section: anchor slug, human title, HTML body."""

    slug: str
    title: str
    body: str


def svg_slug(name: str) -> str:
    """A conservative anchor slug (ASCII letters/digits/dashes only)."""
    return "".join(
        char if char.isalnum() else "-" for char in str(name).lower()
    ).strip("-") or "x"


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    return f"{1e3 * seconds:.2f} ms"


# -- telemetry -------------------------------------------------------------------------
def telemetry_section(
    report: "TelemetryReport", slug: str = "telemetry"
) -> Section:
    """Telemetry: headline tiles, span timeline, counters, span stats."""
    tiles = [
        stat_tile("Scenarios", str(report.scenarios),
                  f"{report.executed} executed, {report.loaded} loaded"),
        stat_tile("Wall clock", _fmt_seconds(report.wall),
                  f"{report.workers} worker(s)"),
        stat_tile("Throughput", f"{report.throughput:.2f}/s"),
    ]
    utilization = report.worker_utilization
    if utilization is not None:
        tiles.append(stat_tile("Worker utilization", f"{100.0 * utilization:.1f}%"))
    if report.codegen_hit_rate is not None:
        tiles.append(
            stat_tile("Codegen hit rate", f"{100.0 * report.codegen_hit_rate:.1f}%")
        )
    if report.store_hit_rate is not None:
        tiles.append(
            stat_tile("Store hit rate", f"{100.0 * report.store_hit_rate:.1f}%")
        )
    parts = [tile_row(tiles)]
    if report.dropped:
        parts.append(
            warning_banner(
                f"the tracer dropped {report.dropped} event(s) after hitting "
                f"its buffer cap — the timeline and span statistics below "
                f"are TRUNCATED and undercount the campaign (raise "
                f"max_events to capture everything)"
            )
        )
    percentiles = report.latency_percentiles()
    if percentiles:
        parts.append(
            kv_table(
                [(name, _fmt_seconds(value)) for name, value in percentiles.items()],
                caption="Scenario latency",
            )
        )
    parts.append(timeline_chart(report.events, title="Span timeline"))
    spans = report.span_stats()
    if spans:
        parts.append(
            data_table(
                ["span", "count", "total s", "mean ms"],
                [
                    [name, int(stats["count"]), f"{stats['total']:.3f}",
                     f"{1e3 * stats['mean']:.2f}"]
                    for name, stats in spans.items()
                ],
                caption="Span statistics",
            )
        )
    if report.counters:
        parts.append(
            data_table(
                ["counter", "value"],
                [[name, f"{report.counters[name]:g}"]
                 for name in sorted(report.counters)],
                caption="Counters",
            )
        )
    return Section(slug, f"Telemetry — {report.engine}", "".join(parts))


# -- fault campaigns -------------------------------------------------------------------
def _fault_envelope(result: "FaultCampaignResult") -> str:
    """ADC-stream envelope across every run, with the golden trace centered.

    The band is the min–max excursion the *fault universe* produced at each
    sample — the visual counterpart of the trace-divergence verdict.
    """
    traces = [
        np.asarray(run_result.analog_trace, dtype=float)
        for run_result in result.results
        if run_result.analog_trace
    ]
    if not traces:
        return ""
    length = min(trace.size for trace in traces)
    if length == 0:
        return ""
    matrix = np.stack([trace[:length] for trace in traces])
    golden = next(
        (
            np.asarray(run_result.analog_trace, dtype=float)[:length]
            for run, run_result in zip(result.runs, result.results)
            if run.golden and run_result.analog_trace
        ),
        None,
    )
    center = golden if golden is not None else np.median(matrix, axis=0)
    return envelope_chart(
        list(range(length)),
        matrix.min(axis=0).tolist(),
        matrix.max(axis=0).tolist(),
        center.tolist(),
        title=f"ADC stream envelope across {len(traces)} runs",
        x_label="ADC sample index",
        y_label="ADC value",
        center_label="golden" if golden is not None else "median",
        band_label="fault min–max",
    )


def fault_section(result: "FaultCampaignResult", slug: str = "faults") -> Section:
    """Fault campaign: coverage headline, verdict matrix, envelope, run table."""
    from ..fault.report import VERDICTS

    counts = result.counts()
    collapse = result.collapse()
    tiles = [
        stat_tile("Fault coverage", result.coverage_text(), "non-silent fraction"),
        stat_tile("Faulted runs", str(result.n_faulted),
                  f"{result.n_runs - result.n_faulted} golden"),
        stat_tile("Equivalence classes", str(len(collapse)), "after collapse"),
        stat_tile("Workers", str(result.workers)),
    ]
    parts = [tile_row(tiles)]
    parts.append(
        data_table(
            ["verdict", "runs"],
            [[verdict, counts[verdict]] for verdict in VERDICTS],
            caption="Verdicts",
        )
    )
    parts.append(coverage_matrix_table(result.coverage_matrix(), VERDICTS))
    envelope = _fault_envelope(result)
    if envelope:
        parts.append(envelope)
    multi = [group for group in collapse if len(group) > 1]
    if multi:
        parts.append(
            data_table(
                ["runs", "verdict", "members"],
                [
                    [len(group), group[0].verdict,
                     ", ".join(entry.run.fault.name for entry in group)]
                    for group in multi
                ],
                caption="Equivalent faults (collapsed)",
            )
        )
    parts.append(
        data_table(
            result._header_cells(),
            [result._row_cells(entry) for entry in result.verdicts()],
            caption="Faulted runs",
        )
    )
    return Section(slug, "Fault campaign", "".join(parts))


# -- parameter sweeps ------------------------------------------------------------------
def sweep_section(result: "SweepResult", slug: str = "sweep") -> Section:
    """Parameter sweep: envelope per output plus the ensemble summary."""
    tiles = [
        stat_tile("Scenarios", str(result.n_scenarios),
                  f"{result.executed_count} executed"),
        stat_tile("Backend", result.backend,
                  f"{result.structure_groups} structure group(s)"),
        stat_tile("Workers", str(result.workers)),
    ]
    parts = [tile_row(tiles)]
    times = result.times.tolist()
    for name in result.output_names():
        envelope = result.envelope(name)
        parts.append(
            envelope_chart(
                times,
                envelope["min"].tolist(),
                envelope["max"].tolist(),
                np.median(result.ensemble(name), axis=0).tolist(),
                title=f"{name} — ensemble envelope ({result.n_scenarios} scenarios)",
                x_label="time (s)",
                y_label=name,
            )
        )
    summary_rows = []
    for name, stats in result.summary().items():
        row = [name] + [f"{stats[key]:.6g}" for key in ("mean", "std", "min", "max")]
        summary_rows.append(row)
    parts.append(
        data_table(
            ["output", "mean", "std", "min", "max"],
            summary_rows,
            caption="Final values",
        )
    )
    return Section(slug, f"Sweep — {result.n_scenarios} scenarios", "".join(parts))


def platform_section(result: "PlatformSweepResult", slug: str = "platform") -> Section:
    """Platform sweep: per-style Table-III summary plus the ADC envelope."""
    tiles = [
        stat_tile("Scenarios", str(result.n_scenarios),
                  f"{result.executed_count} executed"),
        stat_tile("Simulated time", f"{result.duration:g} s",
                  f"timestep {result.timestep:g} s"),
        stat_tile("Workers", str(result.workers)),
    ]
    parts = [tile_row(tiles)]
    summary = result.summary_by_style()
    columns = ["style", "scenarios", "mean s", "speedup", "instr mean", "NRMSE max"]
    rows = []
    for style, entry in summary.items():
        rows.append(
            [
                style,
                entry["scenarios"],
                f"{entry['mean_time']:.4g}",
                f"{entry['speedup']:.3g}",
                f"{entry['instructions_mean']:.4g}",
                f"{entry.get('nrmse_max', float('nan')):.3g}",
            ]
        )
    parts.append(data_table(columns, rows, caption="Per-style summary"))
    traces = [
        np.asarray(run.analog_trace, dtype=float)
        for run in result.results
        if run.analog_trace
    ]
    if traces:
        length = min(trace.size for trace in traces)
        if length:
            matrix = np.stack([trace[:length] for trace in traces])
            parts.append(
                envelope_chart(
                    list(range(length)),
                    matrix.min(axis=0).tolist(),
                    matrix.max(axis=0).tolist(),
                    np.median(matrix, axis=0).tolist(),
                    title=f"ADC stream envelope across {len(traces)} scenarios",
                    x_label="ADC sample index",
                    y_label="ADC value",
                )
            )
    return Section(
        slug, f"Platform sweep — {result.n_scenarios} scenarios", "".join(parts)
    )


# -- benchmarks ------------------------------------------------------------------------
def bench_section(
    series: "dict[str, list[BenchmarkRecord]]",
    slug: str = "bench",
    tolerance: float = 0.30,
) -> Section:
    """Benchmark trends: per-metric lines across commits, one small multiple
    per metric (metrics span orders of magnitude — never one shared axis),
    with regression markers where a commit lost more than ``tolerance`` of
    the prior commit's performance."""
    parts = []
    total_points = sum(len(records) for records in series.values())
    tiles = [
        stat_tile("Benchmarks", str(len(series))),
        stat_tile("History points", str(total_points), "one per commit"),
    ]
    parts.append(tile_row(tiles))
    for name in sorted(series):
        records = series[name]
        trends: list[MetricTrend] = trend_series(name, records, tolerance)
        charts = []
        regress_total = 0
        for trend in trends:
            regressed = {
                index: point.regression
                for index, point in enumerate(trend.points)
                if point.regression
            }
            regress_total += len(regressed)
            charts.append(
                trend_chart(
                    [point.label for point in trend.points],
                    [point.value for point in trend.points],
                    title=trend.metric,
                    regressed=regressed,
                )
            )
        latest = records[-1]
        headline = (
            f"{len(records)} commit(s), {len(trends)} metric(s)"
            + (f", {regress_total} regression marker(s)" if regress_total else "")
        )
        parts.append(
            f'<h3 id="bench-{svg_slug(name)}">{_esc(name)}</h3>'
            f'<p class="sub">{_esc(headline)}</p>'
            f'<div class="trend-grid">' + "".join(charts) + "</div>"
        )
        meta_rows = [
            (key, latest.meta[key])
            for key in ("git_commit", "git_dirty", "python", "machine", "smoke")
            if key in latest.meta
        ]
        if meta_rows:
            parts.append(kv_table(meta_rows, caption=f"Latest {name} provenance"))
    if not series:
        parts.append('<p class="empty">no benchmark snapshots found</p>')
    return Section(slug, "Benchmark trends", "".join(parts))


# -- fuzzing ---------------------------------------------------------------------------
def fuzz_section(report, slug: str = "fuzz") -> Section:
    """Differential fuzz campaign: verdict tiles plus the failure table."""
    failed = len(report.failures)
    tiles = [
        stat_tile("Netlists checked", str(report.checked), f"seed {report.seed}"),
        stat_tile("Disagreements", str(failed)),
        stat_tile("Worst pairwise NRMSE", f"{report.worst_error:.3e}"),
    ]
    parts = [tile_row(tiles)]
    if report.failures:
        parts.append(
            data_table(
                ["netlist", "verdict"],
                [[name, summary] for name, summary in report.failures],
                caption="Failures",
            )
        )
        if report.reproducers:
            parts.append(
                data_table(
                    ["reproducer"],
                    [[path] for path in report.reproducers],
                    caption="Shrunk reproducers",
                )
            )
    else:
        parts.append(
            '<p class="sub">every netlist agreed across all engines</p>'
        )
    return Section(slug, "Differential fuzzing", "".join(parts))


# -- static analysis -------------------------------------------------------------------
def lint_section(report, slug: str = "lint") -> Section:
    """A :class:`~repro.lint.LintReport`: severity tiles, rule matrix, files.

    Fed either live or from the JSON the ``repro-lint --json`` emitter
    writes (``repro-report --lint findings.json``).  The rule × severity
    matrix reuses the fault-coverage table; severities carry their own
    status hues in :data:`~repro.report.svg.VERDICT_STATUS`.
    """
    from ..lint.diagnostics import SEVERITIES

    counts = report.counts()
    tiles = [
        stat_tile("Findings", str(len(report)), report.summary()),
        stat_tile("Errors", str(counts["error"])),
        stat_tile("Warnings", str(counts["warning"])),
        stat_tile("Files affected", str(len(report.files()))),
    ]
    parts = [tile_row(tiles)]
    if not report.ok:
        parts.append(
            warning_banner(
                f"{counts['error']} error-severity finding(s) — the strict "
                "gates (fuzz oracle, lint-enabled campaigns, CI) fail on these"
            )
        )
    if report:
        parts.append(
            coverage_matrix_table(
                report.matrix(), SEVERITIES, caption="Findings by rule × severity"
            )
        )
        per_file: dict[str, dict[str, int]] = {}
        for diagnostic in report:
            row = per_file.setdefault(
                diagnostic.file, {severity: 0 for severity in SEVERITIES}
            )
            row[diagnostic.severity] += 1
        parts.append(
            data_table(
                ["file", *SEVERITIES],
                [
                    [file, *[str(row[severity]) for severity in SEVERITIES]]
                    for file, row in sorted(per_file.items())
                ],
                caption="Findings per file",
            )
        )
        parts.append(
            data_table(
                ["location", "severity", "rule", "message", "hint"],
                [
                    [d.location(), d.severity, d.rule, d.message, d.hint]
                    for d in report
                ],
                caption="All findings",
            )
        )
    else:
        parts.append('<p class="sub">no findings — the linted set is clean</p>')
    return Section(slug, "Static analysis", "".join(parts))


# -- run stores ------------------------------------------------------------------------
def store_section(store, slug: str = "store") -> Section:
    """A :class:`~repro.store.RunStore` directory: record census + envelope.

    Groups committed records by their input ``engine`` tag; platform-sweep
    records (fault campaigns commit through the same engine) contribute
    their stored ADC traces to an envelope plot.
    """
    census: dict[str, int] = {}
    traces: list[np.ndarray] = []
    for key in store.keys():
        path = store.path_for(key)
        payload = json.loads(path.read_text(encoding="utf-8"))
        inputs = payload.get("inputs") or {}
        engine = str(inputs.get("engine", "unknown")) if isinstance(
            inputs, Mapping
        ) else "unknown"
        census[engine] = census.get(engine, 0) + 1
        record = payload.get("record")
        if isinstance(record, Mapping):
            result = record.get("result")
            if isinstance(result, Mapping) and result.get("analog_trace"):
                traces.append(np.asarray(result["analog_trace"], dtype=float))
    tiles = [stat_tile("Committed records", str(len(store)))]
    parts = [tile_row(tiles)]
    if census:
        parts.append(
            data_table(
                ["engine", "records"],
                sorted(census.items()),
                caption="Records by engine",
            )
        )
    if traces:
        length = min(trace.size for trace in traces)
        if length:
            matrix = np.stack([trace[:length] for trace in traces])
            parts.append(
                envelope_chart(
                    list(range(length)),
                    matrix.min(axis=0).tolist(),
                    matrix.max(axis=0).tolist(),
                    np.median(matrix, axis=0).tolist(),
                    title=f"Stored ADC traces — envelope of {len(traces)} runs",
                    x_label="ADC sample index",
                    y_label="ADC value",
                )
            )
    return Section(slug, f"Run store — {store.directory}", "".join(parts))


