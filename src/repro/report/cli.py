"""``repro-report`` — render campaign results into one self-contained HTML file.

Inputs compose; every flag is repeatable where it makes sense, and each
adds one section to the dashboard:

- ``--store DIR``: a content-addressed :class:`~repro.store.RunStore`
  campaign directory (record census by engine + stored-ADC envelope);
- ``--telemetry FILE``: a Chrome ``trace_event`` JSON file or a telemetry
  JSONL dump (span timeline, counters, latency percentiles);
- ``--lint FILE``: a ``repro-lint --json`` findings report (severity
  tiles, rule × severity matrix, per-file and per-finding tables);
- ``--bench DIR``: a directory of ``BENCH_<name>.json`` snapshots;
- ``--history DIR``: a ``benchmarks/history`` directory of per-benchmark
  JSONL files — merged with the snapshots into cross-commit trend lines
  with regression markers.

``--smoke`` is the CI profile: it runs a 16-run traced fault campaign on
the RC1 benchmark circuit, folds in the repository's committed
``BENCH_*.json`` snapshots and ``benchmarks/history/``, writes the
dashboard, and then *verifies* it — the page must parse, contain the
fault/telemetry/bench section anchors, and reference nothing external.
Exit status 1 when the verification fails.

Typical use::

    repro-report --smoke --out dashboard.html
    repro-report --store campaign/ --telemetry trace.json --out report.html
    repro-report --bench . --history benchmarks/history --out bench.html
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ..obs.export import report_from_jsonl, report_from_trace
from ..perf.baseline import BaselineStore, PerfError
from ..store import RunStore, StoreError
from .dashboard import Dashboard, verify_dashboard
from .history import DEFAULT_HISTORY_DIR, load_history, merge_latest
from .sections import (
    bench_section,
    fault_section,
    lint_section,
    store_section,
    telemetry_section,
)

#: Activation-time fractions of the smoke campaign: 3 digital faults × 4
#: times + 3 analog faults + 1 golden run = 16 platform runs.
SMOKE_ACTIVATION_FRACTIONS = (0.3, 0.45, 0.6, 0.75)
SMOKE_DURATION = 1.2e-4
#: Anchors the smoke dashboard must contain (checked by CI).
SMOKE_ANCHORS = ("faults", "telemetry", "bench")


def _load_telemetry(path: Path):
    """A telemetry file → report: trace_event JSON or JSONL, sniffed."""
    text = path.read_text(encoding="utf-8")
    stripped = text.lstrip()
    if stripped.startswith("{") or stripped.startswith("["):
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            payload = None
        if isinstance(payload, (dict, list)):
            if isinstance(payload, dict) and payload.get("kind") == "summary":
                return report_from_jsonl(text)
            return report_from_trace(payload)
    return report_from_jsonl(text)


def run_smoke_campaign():
    """The 16-run traced fault campaign the ``--smoke`` dashboard renders."""
    from ..circuits import benchmark_by_name
    from ..fault.campaign import FaultCampaignRunner, FaultCampaignSpec
    from ..fault.cli import silent_sentinel
    from ..fault.models import (
        AdcStuckBitFault,
        MemoryBitFlipFault,
        ParameterDriftFault,
        UartCorruptionFault,
    )
    from ..sim.sources import SquareWave
    from ..sweep.platform import PlatformScenarioSpec
    from ..vp.firmware import threshold_monitor_source

    bench = benchmark_by_name("RC1")
    stimuli = {name: SquareWave(period=4e-5) for name in bench.stimuli}
    sentinel = silent_sentinel(bench.circuit())
    faults = [
        sentinel,  # negligible drift: the classifier's silent floor
        ParameterDriftFault(sentinel.branch, 2.0),
        ParameterDriftFault(sentinel.branch, 0.5),
        AdcStuckBitFault(bit=9, stuck_at=1),
        MemoryBitFlipFault(bit=0),
        UartCorruptionFault(0x20),
    ]
    spec = FaultCampaignSpec(
        faults=faults,
        activation_times=tuple(
            fraction * SMOKE_DURATION for fraction in SMOKE_ACTIVATION_FRACTIONS
        ),
        scenarios=PlatformScenarioSpec(
            firmwares={"threshold": threshold_monitor_source(500)}
        ),
        seed=0,
    )
    runner = FaultCampaignRunner(
        bench.build, bench.output, stimuli, trace=True, progress=False
    )
    return runner.run(spec, SMOKE_DURATION)


def _repo_root() -> Path:
    from ..perf.cli import repo_root

    return repo_root()


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-report", description=__doc__)
    parser.add_argument(
        "--out", default="dashboard.html", help="output HTML file (default dashboard.html)"
    )
    parser.add_argument(
        "--store",
        action="append",
        default=[],
        metavar="DIR",
        help="render a campaign run-store directory (repeatable)",
    )
    parser.add_argument(
        "--telemetry",
        action="append",
        default=[],
        metavar="FILE",
        help="render a trace_event JSON or telemetry JSONL file (repeatable)",
    )
    parser.add_argument(
        "--bench",
        action="append",
        default=[],
        metavar="DIR",
        help="render BENCH_*.json snapshots from this directory (repeatable)",
    )
    parser.add_argument(
        "--lint",
        action="append",
        default=[],
        metavar="FILE",
        help="render a repro-lint JSON report (written by repro-lint --json; "
        "repeatable)",
    )
    parser.add_argument(
        "--history",
        default=None,
        metavar="DIR",
        help=f"benchmark history directory (default {DEFAULT_HISTORY_DIR}/ "
        "under the repo root when present)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="regression-marker tolerance for trend lines (default 0.30)",
    )
    parser.add_argument("--title", default="repro dashboard", help="page title")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI profile: run a 16-run traced fault campaign, add the "
        "committed bench snapshots and history, then verify the output",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="after writing, verify the page parses, anchors resolve and "
        "nothing external is referenced (exit 1 on violations); implied "
        "by --smoke",
    )
    arguments = parser.parse_args(argv)

    dashboard = Dashboard(title=arguments.title)
    anchors: list[str] = []

    if arguments.smoke:
        print("repro-report: running the 16-run smoke fault campaign (traced)...")
        result = run_smoke_campaign()
        print(
            f"  {result.n_runs} runs ({result.n_faulted} faulted), "
            f"coverage {result.coverage_text()}"
        )
        dashboard.add(fault_section(result))
        anchors.append("faults")
        if result.telemetry is not None:
            dashboard.add(telemetry_section(result.telemetry))
            anchors.append("telemetry")
        root = _repo_root()
        if not arguments.bench:
            arguments.bench = [str(root)]
        if arguments.history is None and (root / DEFAULT_HISTORY_DIR).exists():
            arguments.history = str(root / DEFAULT_HISTORY_DIR)

    for directory in arguments.store:
        try:
            store = RunStore(directory)
        except StoreError as error:
            print(f"repro-report: {error}", file=sys.stderr)
            return 2
        slug = f"store-{len(anchors)}" if len(arguments.store) > 1 else "store"
        dashboard.add(store_section(store, slug=slug))
        anchors.append(slug)

    for index, file_name in enumerate(arguments.telemetry):
        path = Path(file_name)
        try:
            report = _load_telemetry(path)
        except (OSError, json.JSONDecodeError, ValueError) as error:
            print(f"repro-report: cannot read {path}: {error}", file=sys.stderr)
            return 2
        slug = (
            f"telemetry-{index}" if len(arguments.telemetry) > 1 else "telemetry"
        )
        dashboard.add(telemetry_section(report, slug=slug))
        anchors.append(slug)

    for index, file_name in enumerate(arguments.lint):
        path = Path(file_name)
        try:
            from ..lint import from_json

            report = from_json(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as error:
            print(f"repro-report: cannot read {path}: {error}", file=sys.stderr)
            return 2
        slug = f"lint-{index}" if len(arguments.lint) > 1 else "lint"
        dashboard.add(lint_section(report, slug=slug))
        anchors.append(slug)

    latest = {}
    try:
        for directory in arguments.bench:
            latest.update(BaselineStore(directory).load_all())
        history = load_history(arguments.history) if arguments.history else {}
    except PerfError as error:
        print(f"repro-report: {error}", file=sys.stderr)
        return 2
    if latest or history:
        series = merge_latest(history, latest)
        dashboard.add(
            bench_section(series, tolerance=arguments.tolerance)
        )
        anchors.append("bench")

    if not dashboard.sections:
        parser.error(
            "nothing to render: pass --store/--telemetry/--bench (or --smoke)"
        )

    path = dashboard.write(arguments.out)
    html_text = path.read_text(encoding="utf-8")
    print(
        f"wrote {path} ({len(html_text) / 1024:.0f} KiB, "
        f"{len(dashboard.sections)} section(s))"
    )

    if arguments.smoke or arguments.check:
        required = SMOKE_ANCHORS if arguments.smoke else tuple(anchors)
        problems = verify_dashboard(html_text, required)
        for problem in problems:
            print(f"VERIFY FAILURE: {problem}", file=sys.stderr)
        if problems:
            return 1
        print(
            f"dashboard verified: parses, anchors "
            f"{', '.join('#' + anchor for anchor in required)} present, "
            f"no external references"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
