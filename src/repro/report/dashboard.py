"""Assemble sections into one self-contained HTML dashboard file.

The contract this module enforces is the one CI relies on: the rendered
page embeds **everything** — styles, charts, data — inline.  No external
stylesheets, scripts, fonts, images or network requests of any kind, so
the file opens from disk, attaches to a ticket, and uploads as a CI
artifact without dragging a CDN along.  :func:`self_contained_problems`
is the machine check (used by the tests, the ``repro-report --smoke``
path and the CI job): it scans the rendered page for any ``http(s)://``
reference or external-asset element and returns the violations.

Light and dark theming both ship in the one ``<style>`` block (the dark
values are their own selected steps, not an automatic inversion), driven
by ``prefers-color-scheme``.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from html.parser import HTMLParser
from pathlib import Path

from .sections import Section
from .svg import esc

#: Series slots (light, dark) in the fixed categorical order, plus status
#: and chrome colors — the validated reference palette; data marks wear
#: these via CSS classes, text always wears the ink tokens.
_LIGHT = {
    "surface": "#fcfcfb", "page": "#f9f9f7", "ink": "#0b0b0b",
    "ink2": "#52514e", "muted": "#898781", "grid": "#e1e0d9",
    "axis": "#c3c2b7", "border": "rgba(11,11,11,0.10)",
    "s1": "#2a78d6", "s2": "#eb6834", "s3": "#1baf7a", "s4": "#eda100",
    "s5": "#e87ba4", "s6": "#008300", "s7": "#4a3aa7", "s8": "#e34948",
    "good": "#0ca30c", "warning": "#fab219", "serious": "#ec835a",
    "critical": "#d03b3b",
}
_DARK = {
    "surface": "#1a1a19", "page": "#0d0d0d", "ink": "#ffffff",
    "ink2": "#c3c2b7", "muted": "#898781", "grid": "#2c2c2a",
    "axis": "#383835", "border": "rgba(255,255,255,0.10)",
    "s1": "#3987e5", "s2": "#d95926", "s3": "#199e70", "s4": "#c98500",
    "s5": "#d55181", "s6": "#008300", "s7": "#9085e9", "s8": "#e66767",
    "good": "#0ca30c", "warning": "#fab219", "serious": "#ec835a",
    "critical": "#d03b3b",
}


def _vars(palette: dict) -> str:
    return "".join(f"--{name}:{value};" for name, value in palette.items())


_SERIES_RULES = "\n".join(
    f".s{n}{{stroke:var(--s{n})}}"
    f".s{n}-fill{{fill:var(--s{n});fill-opacity:0.12}}"
    f".s{n}-fill-solid{{fill:var(--s{n})}}"
    f".s{n}-wash{{background:var(--s{n})}}"
    for n in range(1, 9)
)

_CSS = (
    ":root{" + _vars(_LIGHT) + "}"
    "@media (prefers-color-scheme: dark){:root{" + _vars(_DARK) + "}}"
    """
html{color-scheme:light dark}
body{font-family:system-ui,-apple-system,"Segoe UI",sans-serif;
  margin:0;background:var(--page);color:var(--ink)}
header{padding:1.2rem 2rem;border-bottom:1px solid var(--border)}
header h1{margin:0;font-size:1.3rem}
header .meta{color:var(--ink2);font-size:0.85rem;margin-top:0.3rem}
nav{padding:0.5rem 2rem;border-bottom:1px solid var(--border);
  display:flex;gap:1rem;flex-wrap:wrap}
nav a{color:var(--ink2);text-decoration:none;font-size:0.9rem}
nav a:hover{color:var(--ink)}
main{padding:1rem 2rem;max-width:1100px}
section{background:var(--surface);border:1px solid var(--border);
  border-radius:8px;padding:1rem 1.4rem;margin:1.2rem 0}
h2{font-size:1.05rem;margin:0.2rem 0 0.8rem}
h3{font-size:0.95rem;margin:1rem 0 0.2rem}
.sub{color:var(--ink2);font-size:0.85rem;margin:0.1rem 0 0.5rem}
.tiles{display:flex;gap:0.8rem;flex-wrap:wrap;margin:0.4rem 0 0.8rem}
.tile{border:1px solid var(--border);border-radius:6px;
  padding:0.5rem 0.9rem;min-width:7.5rem}
.tile-label{color:var(--ink2);font-size:0.78rem}
.tile-value{font-size:1.35rem;font-weight:600}
.tile-detail{color:var(--muted);font-size:0.75rem}
table{border-collapse:collapse;margin:0.8rem 0;font-size:0.85rem}
caption{text-align:left;color:var(--ink2);font-size:0.85rem;
  padding-bottom:0.3rem;font-weight:600}
th,td{border:1px solid var(--grid);padding:0.25rem 0.6rem;text-align:left}
th{color:var(--ink2);font-weight:600}
td{font-variant-numeric:tabular-nums}
table.matrix td.cell{position:relative;text-align:center;min-width:4.5rem}
.st-good-wash{background:color-mix(in srgb, var(--good) calc(100% * var(--cell-alpha,0)), transparent)}
.st-warning-wash{background:color-mix(in srgb, var(--warning) calc(100% * var(--cell-alpha,0)), transparent)}
.st-serious-wash{background:color-mix(in srgb, var(--serious) calc(100% * var(--cell-alpha,0)), transparent)}
.st-critical-wash{background:color-mix(in srgb, var(--critical) calc(100% * var(--cell-alpha,0)), transparent)}
.st-neutral-wash{background:color-mix(in srgb, var(--muted) calc(100% * var(--cell-alpha,0)), transparent)}
.chip{display:inline-block;min-width:1.1em;text-align:center;
  border-radius:3px;font-size:0.75rem;padding:0 0.2em;color:var(--surface)}
.chip.st-good{background:var(--good)}
.chip.st-warning{background:var(--warning);color:var(--ink)}
.chip.st-serious{background:var(--serious);color:var(--ink)}
.chip.st-critical{background:var(--critical)}
.chip.st-neutral{background:var(--muted)}
.warning{border:1px solid var(--warning);border-radius:6px;
  padding:0.5rem 0.8rem;font-size:0.88rem}
.empty{color:var(--muted);font-style:italic}
svg.chart{max-width:100%;height:auto;display:block;margin:0.6rem 0}
svg text{font-family:inherit}
.chart-title{font-size:13px;font-weight:600;fill:var(--ink)}
.chart-title.small{font-size:11px;fill:var(--ink2)}
.tick{font-size:10px;fill:var(--muted);font-variant-numeric:tabular-nums}
.lbl{font-size:10px;fill:var(--ink2)}
.grid{stroke:var(--grid);stroke-width:1}
.axis{stroke:var(--axis);stroke-width:1}
.line{stroke-width:2;stroke-linejoin:round;stroke-linecap:round}
.marker{stroke:var(--surface);stroke-width:2}
.marker.st-critical{fill:var(--critical)}
.span{stroke:var(--surface);stroke-width:1}
.band{stroke:none}
.s-other-fill{fill:var(--muted)}.s-other{stroke:var(--muted)}
.trend-grid{display:flex;gap:0.6rem;flex-wrap:wrap}
.legend{display:flex;gap:1rem;flex-wrap:wrap;color:var(--ink2);
  font-size:0.8rem;margin-top:0.1rem}
.key{display:inline-flex;align-items:center;gap:0.35rem}
.swatch{display:inline-block;width:0.85em;height:0.85em;border-radius:2px}
.s1-wash{background:var(--s1);opacity:0.25}
.unit{color:var(--muted)}
figure.chart-block{margin:0.8rem 0}
footer{color:var(--muted);font-size:0.8rem;padding:1rem 2rem}
"""
    + _SERIES_RULES
)

#: Patterns a self-contained dashboard must never contain.  ``http(s)://``
#: catches remote URLs wherever they hide (href, src, CSS url(), @import);
#: the element-level patterns catch protocol-relative or local references
#: that would still make the file depend on anything outside itself.
_EXTERNAL_PATTERNS = (
    re.compile(r"https?://", re.IGNORECASE),
    re.compile(r"<script[^>]*\bsrc\s*=", re.IGNORECASE),
    re.compile(r"<link\b", re.IGNORECASE),
    re.compile(r"<img\b", re.IGNORECASE),
    re.compile(r"<iframe\b", re.IGNORECASE),
    re.compile(r"@import\b", re.IGNORECASE),
    re.compile(r"url\s*\(", re.IGNORECASE),
)


def self_contained_problems(html_text: str) -> list[str]:
    """Violations of the zero-external-assets contract (empty == clean)."""
    problems = []
    for pattern in _EXTERNAL_PATTERNS:
        for match in pattern.finditer(html_text):
            start = max(match.start() - 40, 0)
            snippet = html_text[start : match.end() + 40].replace("\n", " ")
            problems.append(
                f"external reference {match.group(0)!r} near ...{snippet}..."
            )
    return problems


class _IdCollector(HTMLParser):
    """Collect every element id while exercising the stdlib parser."""

    def __init__(self) -> None:
        super().__init__()
        self.ids: set[str] = set()
        self.tags = 0

    def handle_starttag(self, tag, attrs) -> None:  # noqa: D102
        self.tags += 1
        for name, value in attrs:
            if name == "id" and value:
                self.ids.add(value)


def collect_ids(html_text: str) -> set[str]:
    """Element ids of a rendered page (parsed with ``html.parser``)."""
    collector = _IdCollector()
    collector.feed(html_text)
    collector.close()
    return collector.ids


def verify_dashboard(
    html_text: str, required_anchors: "tuple[str, ...] | list[str]" = ()
) -> list[str]:
    """The full machine check CI runs over a rendered dashboard.

    Parses the page with the stdlib ``html.parser`` (a page the parser
    finds no elements in is broken), requires every anchor in
    ``required_anchors`` to exist as an element id, and applies
    :func:`self_contained_problems`.  Returns all violations.
    """
    problems: list[str] = []
    collector = _IdCollector()
    try:
        collector.feed(html_text)
        collector.close()
    except Exception as exc:  # pragma: no cover - html.parser is lenient
        return [f"html.parser failed: {exc}"]
    if collector.tags == 0:
        problems.append("page contains no HTML elements")
    for anchor in required_anchors:
        if anchor not in collector.ids:
            problems.append(f"missing section anchor #{anchor}")
    problems.extend(self_contained_problems(html_text))
    return problems


@dataclass
class Dashboard:
    """An ordered collection of sections rendered as one HTML page."""

    title: str = "repro dashboard"
    subtitle: str = ""
    sections: list[Section] = field(default_factory=list)

    def add(self, section: "Section | None") -> "Dashboard":
        """Append a section (``None`` is ignored, so adapters may skip)."""
        if section is not None:
            self.sections.append(section)
        return self

    def render(self) -> str:
        """The complete page.  Section slugs become ``<section id=...>``
        anchors, mirrored in the nav bar."""
        stamp = time.strftime("%Y-%m-%d %H:%M:%S %Z")
        nav = "".join(
            f'<a href="#{esc(section.slug)}">{esc(section.title)}</a>'
            for section in self.sections
        )
        body = "".join(
            f'<section id="{esc(section.slug)}">'
            f"<h2>{esc(section.title)}</h2>{section.body}</section>"
            for section in self.sections
        )
        sub = f'<div class="meta">{esc(self.subtitle)}</div>' if self.subtitle else ""
        return (
            "<!doctype html>\n"
            '<html lang="en">\n<head>\n<meta charset="utf-8">\n'
            '<meta name="viewport" content="width=device-width, initial-scale=1">\n'
            f"<title>{esc(self.title)}</title>\n"
            f"<style>{_CSS}</style>\n</head>\n<body>\n"
            f"<header><h1>{esc(self.title)}</h1>{sub}"
            f'<div class="meta">generated {esc(stamp)} — fully self-contained, '
            "no external assets</div></header>\n"
            f"<nav>{nav}</nav>\n<main>{body}</main>\n"
            "<footer>repro.report — single-file dashboard; open offline, "
            "attach anywhere.</footer>\n</body>\n</html>\n"
        )

    def write(self, path: "str | Path") -> Path:
        """Render and write the page; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.render(), encoding="utf-8")
        return path
