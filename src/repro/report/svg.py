"""Inline-SVG chart primitives for the dashboard generator.

Every function returns a fragment of markup — an ``<svg>`` element or a
small HTML block — with **zero external references**: no scripts, no
stylesheets, no fonts, no image URLs.  Styling rides on CSS classes that
:mod:`repro.report.dashboard` defines once per page (with light and dark
values), so the charts restyle with the page theme without duplicating hex
values into every mark.

Hover detail uses native SVG/HTML ``<title>`` tooltips — the browser
renders them without a line of JavaScript, which keeps the dashboard inert
enough to upload anywhere as a CI artifact.

Conventions (shared with the page stylesheet):

* series classes ``s1``…``s8`` — the fixed categorical slot order; slots
  are assigned in first-appearance order and never cycled: past eight
  distinct names everything folds into the muted ``s-other`` class;
* status classes ``st-good`` / ``st-warning`` / ``st-serious`` /
  ``st-critical`` — reserved for verdict/regression state, never reused as
  series colors;
* chart chrome classes ``grid`` (hairline), ``axis`` (baseline),
  ``tick`` / ``lbl`` (muted / secondary text).

All dynamic text — span names, netlist names, fault names, labels — is
HTML-escaped here, at the point of emission; callers never pre-escape.
"""

from __future__ import annotations

import html
import math
from typing import Mapping, Sequence

#: Number of categorical series slots; names past the cap share ``s-other``.
SERIES_SLOTS = 8

#: Sample budget per plotted series: envelope traces are min/max-pooled
#: down to this many buckets so a 100k-sample campaign still renders as a
#: few kilobytes of path data.
MAX_PLOT_POINTS = 480


def esc(text: object) -> str:
    """HTML-escape one dynamic value (also used by the HTML table emitters)."""
    return html.escape(str(text), quote=True)


def _fmt(value: float) -> str:
    """Compact human formatting for tick and direct labels."""
    if value == 0.0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1e15 or magnitude < 1e-4:
        return f"{value:.3g}"
    for threshold, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if magnitude >= threshold:
            return f"{value / threshold:.3g}{suffix}"
    return f"{value:.4g}"


def _coord(value: float) -> str:
    """SVG coordinate rendering (fixed precision keeps paths compact)."""
    return f"{value:.2f}".rstrip("0").rstrip(".")


def nice_ticks(low: float, high: float, count: int = 5) -> list[float]:
    """Round tick positions covering ``[low, high]`` (clean 1/2/5 steps)."""
    if not math.isfinite(low) or not math.isfinite(high):
        return []
    if high <= low:
        return [low]
    span = high - low
    raw_step = span / max(count - 1, 1)
    power = 10.0 ** math.floor(math.log10(raw_step))
    for multiple in (1.0, 2.0, 5.0, 10.0):
        step = multiple * power
        if span / step <= count + 0.5:
            break
    first = math.ceil(low / step) * step
    ticks = []
    position = first
    while position <= high + 1e-9 * step:
        ticks.append(0.0 if abs(position) < step * 1e-9 else position)
        position += step
    return ticks


class LinearScale:
    """Affine map from a data domain to a pixel range."""

    def __init__(self, d0: float, d1: float, r0: float, r1: float) -> None:
        if d1 == d0:  # degenerate domain: map everything to the range middle
            d1 = d0 + 1.0
            d0 = d0 - 1.0
        self.d0, self.d1, self.r0, self.r1 = d0, d1, r0, r1
        self._k = (r1 - r0) / (d1 - d0)

    def __call__(self, value: float) -> float:
        return self.r0 + (value - self.d0) * self._k


def _pad_domain(low: float, high: float) -> tuple[float, float]:
    if high == low:
        pad = abs(low) * 0.05 or 1.0
        return low - pad, high + pad
    pad = (high - low) * 0.05
    return low - pad, high + pad


def decimate(values: Sequence[float], buckets: int, mode: str) -> list[float]:
    """Pool ``values`` into ``buckets`` (``min``/``max``/``mean`` per bucket).

    Envelope bands must pool *conservatively* — the lower edge with ``min``,
    the upper with ``max`` — so decimation can only widen the band, never
    hide an excursion.
    """
    n = len(values)
    if n <= buckets:
        return [float(value) for value in values]
    pool = {"min": min, "max": max}.get(mode)
    result = []
    for index in range(buckets):
        start = index * n // buckets
        stop = max((index + 1) * n // buckets, start + 1)
        chunk = values[start:stop]
        if pool is None:
            result.append(float(sum(chunk) / len(chunk)))
        else:
            result.append(float(pool(chunk)))
    return result


def _polyline(xs: Sequence[float], ys: Sequence[float]) -> str:
    return " ".join(f"{_coord(x)},{_coord(y)}" for x, y in zip(xs, ys))


def _y_grid(ticks: Sequence[float], scale: LinearScale, x0: float, x1: float) -> list[str]:
    parts = []
    for tick in ticks:
        y = _coord(scale(tick))
        parts.append(
            f'<line class="grid" x1="{_coord(x0)}" y1="{y}" x2="{_coord(x1)}" y2="{y}"/>'
        )
        parts.append(
            f'<text class="tick" x="{_coord(x0 - 6)}" y="{y}" dy="0.32em" '
            f'text-anchor="end">{esc(_fmt(tick))}</text>'
        )
    return parts


def series_class(slot: int) -> str:
    """The CSS class of categorical slot ``slot`` (0-based; capped, never cycled)."""
    if slot < SERIES_SLOTS:
        return f"s{slot + 1}"
    return "s-other"


# -- envelope plot ---------------------------------------------------------------------
def envelope_chart(
    x: Sequence[float],
    low: Sequence[float],
    high: Sequence[float],
    center: Sequence[float],
    *,
    title: str,
    x_label: str = "time",
    y_label: str = "",
    center_label: str = "median",
    band_label: str = "min–max",
    width: int = 720,
    height: int = 260,
) -> str:
    """Ensemble envelope: a min–max band with the central trace on top.

    ``x``/``low``/``high``/``center`` are equal-length sequences; long
    traces are min/max-pooled to :data:`MAX_PLOT_POINTS` buckets.
    """
    if not len(x) or len(x) != len(low) or len(x) != len(high) or len(x) != len(center):
        return f'<p class="empty">{esc(title)}: no samples to plot</p>'
    buckets = MAX_PLOT_POINTS
    xs = decimate(x, buckets, "mean")
    lows = decimate(low, buckets, "min")
    highs = decimate(high, buckets, "max")
    centers = decimate(center, buckets, "mean")

    ml, mr, mt, mb = 64, 16, 28, 40
    x0, x1, y0, y1 = ml, width - mr, height - mb, mt
    dx0, dx1 = min(xs), max(xs)
    dlo, dhi = _pad_domain(min(lows), max(highs))
    sx = LinearScale(dx0, dx1, x0, x1)
    sy = LinearScale(dlo, dhi, y0, y1)

    px = [sx(value) for value in xs]
    band_points = _polyline(px, [sy(v) for v in highs]) + " " + _polyline(
        list(reversed(px)), [sy(v) for v in reversed(lows)]
    )
    center_points = _polyline(px, [sy(v) for v in centers])

    parts = [
        f'<svg class="chart" role="img" viewBox="0 0 {width} {height}" '
        f'width="{width}" height="{height}" aria-label="{esc(title)}">',
        f'<text class="chart-title" x="{ml}" y="16">{esc(title)}</text>',
    ]
    parts += _y_grid(nice_ticks(dlo, dhi), sy, x0, x1)
    for tick in nice_ticks(dx0, dx1, 6):
        tx = _coord(sx(tick))
        parts.append(
            f'<text class="tick" x="{tx}" y="{_coord(y0 + 16)}" '
            f'text-anchor="middle">{esc(_fmt(tick))}</text>'
        )
    parts.append(
        f'<line class="axis" x1="{_coord(x0)}" y1="{_coord(y0)}" '
        f'x2="{_coord(x1)}" y2="{_coord(y0)}"/>'
    )
    band_tip = (
        f"{band_label}: {_fmt(min(lows))} … {_fmt(max(highs))}"
    )
    parts.append(
        f'<polygon class="band s1-fill" points="{band_points}">'
        f"<title>{esc(band_tip)}</title></polygon>"
    )
    parts.append(
        f'<polyline class="line s1" fill="none" points="{center_points}">'
        f"<title>{esc(center_label)}</title></polyline>"
    )
    # Direct labels at the right edge: the band extremes and the center line.
    parts.append(
        f'<text class="lbl" x="{_coord(x1 + 2)}" y="{_coord(sy(centers[-1]))}" '
        f'dy="0.32em" text-anchor="start"></text>'
    )
    parts.append(
        f'<text class="lbl" x="{_coord(x0)}" y="{_coord(height - 6)}">'
        f"{esc(x_label)}</text>"
    )
    if y_label:
        parts.append(
            f'<text class="lbl" x="{ml}" y="{mt - 2}" text-anchor="start" '
            f'opacity="0"> </text>'
        )
    legend = (
        f'<span class="key"><span class="swatch s1-fill-solid"></span>'
        f"{esc(center_label)}</span>"
        f'<span class="key"><span class="swatch s1-wash"></span>'
        f"{esc(band_label)}</span>"
    )
    parts.append("</svg>")
    return (
        '<figure class="chart-block">'
        + "".join(parts)
        + f'<figcaption class="legend">{legend}'
        + (f' <span class="unit">{esc(y_label)}</span>' if y_label else "")
        + "</figcaption></figure>"
    )


# -- trend lines -----------------------------------------------------------------------
def trend_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    title: str,
    regressed: "Mapping[int, str] | None" = None,
    width: int = 250,
    height: int = 120,
) -> str:
    """One metric's value across commits: a small-multiple trend line.

    ``labels[i]`` names point ``i`` (short commit hash); ``regressed`` maps
    point index → regression description, rendered as a critical marker
    (plus tooltip) at that commit.  One metric per chart — benchmark metrics
    span orders of magnitude, and small multiples keep every chart on its
    own honest axis instead of a dual-axis mashup.
    """
    if not len(values) or len(labels) != len(values):
        return f'<p class="empty">{esc(title)}: no history</p>'
    regressed = regressed or {}
    ml, mr, mt, mb = 10, 10, 24, 18
    x0, x1, y0, y1 = ml, width - mr, height - mb, mt
    dlo, dhi = _pad_domain(min(values), max(values))
    sy = LinearScale(dlo, dhi, y0, y1)
    if len(values) == 1:
        px = [(x0 + x1) / 2.0]
    else:
        sx = LinearScale(0, len(values) - 1, x0, x1)
        px = [sx(index) for index in range(len(values))]
    py = [sy(value) for value in values]

    parts = [
        f'<svg class="chart trend" role="img" viewBox="0 0 {width} {height}" '
        f'width="{width}" height="{height}" aria-label="{esc(title)}">',
        f'<text class="chart-title small" x="{ml}" y="14">{esc(title)}</text>',
    ]
    if len(values) > 1:
        parts.append(
            f'<polyline class="line s1" fill="none" '
            f'points="{_polyline(px, py)}"/>'
        )
    for index, (x, y) in enumerate(zip(px, py)):
        tip = f"{labels[index]}: {values[index]:.6g}"
        if index in regressed:
            tip += f" — REGRESSION: {regressed[index]}"
            parts.append(
                f'<circle class="marker st-critical" cx="{_coord(x)}" '
                f'cy="{_coord(y)}" r="5"><title>{esc(tip)}</title></circle>'
            )
        else:
            parts.append(
                f'<circle class="marker s1-fill-solid" cx="{_coord(x)}" '
                f'cy="{_coord(y)}" r="4"><title>{esc(tip)}</title></circle>'
            )
    first_anchor = "start" if len(values) > 1 else "middle"
    parts.append(
        f'<text class="lbl" x="{_coord(px[-1])}" '
        f'y="{_coord(max(py[-1] - 9, 10))}" text-anchor="end">'
        f"{esc(_fmt(values[-1]))}</text>"
    )
    parts.append(
        f'<text class="tick" x="{_coord(px[0])}" y="{height - 5}" '
        f'text-anchor="{first_anchor}">{esc(labels[0])}</text>'
    )
    if len(labels) > 1:
        parts.append(
            f'<text class="tick" x="{_coord(px[-1])}" y="{height - 5}" '
            f'text-anchor="end">{esc(labels[-1])}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


# -- span timeline ---------------------------------------------------------------------
#: At most this many spans are drawn (the longest win); the rest are summed
#: into a caption note so truncation is loud, never silent.
MAX_TIMELINE_SPANS = 1500


def timeline_chart(
    spans: Sequence[Mapping],
    *,
    title: str = "Span timeline",
    width: int = 860,
) -> str:
    """Per-phase span timeline: one lane per worker pid, bars colored by name.

    ``spans`` are telemetry event dicts (``ph == "X"``) with ``name``,
    ``ts``, ``dur`` (seconds) and ``pid``.  Colors are assigned to span
    names in first-appearance order over the fixed categorical slots; names
    past the eighth share the muted "other" slot (folded, never cycled).
    """
    complete = [
        event
        for event in spans
        if event.get("ph") == "X" and float(event.get("dur", 0.0)) >= 0.0
    ]
    if not complete:
        return f'<p class="empty">{esc(title)}: no spans recorded</p>'
    dropped_note = ""
    if len(complete) > MAX_TIMELINE_SPANS:
        keep = sorted(complete, key=lambda e: -float(e["dur"]))[:MAX_TIMELINE_SPANS]
        dropped_note = (
            f" — drawing the {MAX_TIMELINE_SPANS} longest of "
            f"{len(complete)} spans"
        )
        complete = sorted(keep, key=lambda e: float(e["ts"]))

    t0 = min(float(event["ts"]) for event in complete)
    t1 = max(float(event["ts"]) + float(event["dur"]) for event in complete)
    pids = sorted({int(event.get("pid", 0)) for event in complete})
    slots: dict[str, int] = {}
    for event in complete:
        name = str(event["name"])
        if name not in slots:
            slots[name] = len(slots)

    lane_h, bar_h = 22, 14
    ml, mr, mt, mb = 76, 16, 28, 30
    height = mt + lane_h * len(pids) + mb
    x0, x1 = ml, width - mr
    sx = LinearScale(t0, t1, x0, x1)

    parts = [
        f'<svg class="chart" role="img" viewBox="0 0 {width} {height}" '
        f'width="{width}" height="{height}" aria-label="{esc(title)}">',
        f'<text class="chart-title" x="{ml}" y="16">{esc(title)}</text>',
    ]
    for position, pid in enumerate(pids):
        y = mt + position * lane_h
        parts.append(
            f'<text class="tick" x="{ml - 8}" y="{_coord(y + lane_h / 2)}" '
            f'dy="0.32em" text-anchor="end">pid {pid}</text>'
        )
        parts.append(
            f'<line class="grid" x1="{x0}" y1="{_coord(y + lane_h)}" '
            f'x2="{x1}" y2="{_coord(y + lane_h)}"/>'
        )
    lane_of = {pid: index for index, pid in enumerate(pids)}
    for event in complete:
        name = str(event["name"])
        start = sx(float(event["ts"]))
        stop = sx(float(event["ts"]) + float(event["dur"]))
        bar_w = max(stop - start, 1.0)
        y = mt + lane_of[int(event.get("pid", 0))] * lane_h + (lane_h - bar_h) / 2
        tip = f"{name}: {1e3 * float(event['dur']):.3f} ms"
        args = event.get("args")
        if isinstance(args, Mapping) and args:
            detail = ", ".join(f"{key}={value}" for key, value in args.items())
            tip += f" ({detail})"
        parts.append(
            f'<rect class="span {series_class(slots[name])}-fill-solid" '
            f'x="{_coord(start)}" y="{_coord(y)}" width="{_coord(bar_w)}" '
            f'height="{bar_h}" rx="2"><title>{esc(tip)}</title></rect>'
        )
    for tick in nice_ticks(0.0, (t1 - t0) * 1e3, 6):
        tx = _coord(sx(t0 + tick / 1e3))
        parts.append(
            f'<text class="tick" x="{tx}" y="{height - 10}" '
            f'text-anchor="middle">{esc(_fmt(tick))} ms</text>'
        )
    parts.append("</svg>")
    keys = "".join(
        f'<span class="key"><span class="swatch '
        f'{series_class(slot)}-fill-solid"></span>{esc(name)}</span>'
        for name, slot in list(slots.items())[: SERIES_SLOTS]
    )
    if len(slots) > SERIES_SLOTS:
        keys += (
            f'<span class="key"><span class="swatch s-other-fill"></span>'
            f"{len(slots) - SERIES_SLOTS} more</span>"
        )
    return (
        '<figure class="chart-block">'
        + "".join(parts)
        + f'<figcaption class="legend">{keys}'
        + (f'<span class="unit">{esc(dropped_note)}</span>' if dropped_note else "")
        + "</figcaption></figure>"
    )


# -- coverage matrix -------------------------------------------------------------------
#: Verdict → reserved status class (icon glyph, label text).  Status colors
#: never impersonate series colors; every cell also carries its count as
#: text, so color is never the only channel.
VERDICT_STATUS = {
    "silent": ("st-neutral", "●"),
    "trace-divergent": ("st-warning", "◆"),
    "firmware-detected": ("st-good", "✓"),
    "lint-rejected": ("st-warning", "■"),
    "crash": ("st-critical", "✗"),
    # Lint severities reuse the same reserved status hues (the lint section's
    # rule × severity matrix goes through coverage_matrix_table too).
    "error": ("st-critical", "✗"),
    "warning": ("st-warning", "◆"),
    "info": ("st-neutral", "●"),
}


def coverage_matrix_table(
    matrix: Mapping[str, Mapping[str, int]],
    verdicts: Sequence[str],
    *,
    caption: str = "Coverage by fault kind",
) -> str:
    """Fault-kind × verdict matrix as an HTML table colored by verdict.

    Cell washes use the verdict's status hue with opacity scaled by count
    (relative to the largest cell), the count itself stays in text ink.
    """
    if not matrix:
        return f'<p class="empty">{esc(caption)}: no faulted runs</p>'
    peak = max(
        (count for row in matrix.values() for count in row.values()), default=0
    )
    head = ["<tr><th>fault kind</th>"]
    for verdict in verdicts:
        status, glyph = VERDICT_STATUS.get(verdict, ("st-neutral", "●"))
        head.append(
            f'<th><span class="chip {status}">{glyph}</span> {esc(verdict)}</th>'
        )
    head.append("<th>total</th></tr>")
    body = []
    for kind, row in matrix.items():
        cells = [f"<tr><th>{esc(kind)}</th>"]
        for verdict in verdicts:
            count = int(row.get(verdict, 0))
            status, _ = VERDICT_STATUS.get(verdict, ("st-neutral", "●"))
            alpha = 0.0 if peak == 0 else 0.12 + 0.58 * (count / peak)
            style = f' style="--cell-alpha:{alpha:.2f}"' if count else ""
            cells.append(
                f'<td class="cell {status}-wash"{style}>{count}</td>'
            )
        cells.append(f"<td>{sum(int(v) for v in row.values())}</td></tr>")
        body.append("".join(cells))
    return (
        f'<table class="matrix"><caption>{esc(caption)}</caption>'
        + "".join(head)
        + "".join(body)
        + "</table>"
    )


# -- small HTML helpers ----------------------------------------------------------------
def stat_tile(label: str, value: str, detail: str = "") -> str:
    """One stat tile: sentence-case label, compact value, optional detail."""
    extra = f'<div class="tile-detail">{esc(detail)}</div>' if detail else ""
    return (
        f'<div class="tile"><div class="tile-label">{esc(label)}</div>'
        f'<div class="tile-value">{esc(value)}</div>{extra}</div>'
    )


def tile_row(tiles: Sequence[str]) -> str:
    return '<div class="tiles">' + "".join(tiles) + "</div>"


def kv_table(rows: Sequence[tuple[str, object]], caption: str = "") -> str:
    """A two-column key/value table (keys escaped, values escaped)."""
    cap = f"<caption>{esc(caption)}</caption>" if caption else ""
    body = "".join(
        f"<tr><th>{esc(key)}</th><td>{esc(value)}</td></tr>" for key, value in rows
    )
    return f'<table class="kv">{cap}{body}</table>'


def data_table(
    header: Sequence[str], rows: Sequence[Sequence[object]], caption: str = ""
) -> str:
    """A plain data table (every cell escaped) — the chart's table view."""
    cap = f"<caption>{esc(caption)}</caption>" if caption else ""
    head = "<tr>" + "".join(f"<th>{esc(cell)}</th>" for cell in header) + "</tr>"
    body = "".join(
        "<tr>" + "".join(f"<td>{esc(cell)}</td>" for cell in row) + "</tr>"
        for row in rows
    )
    return f'<table class="data">{cap}{head}{body}</table>'


def warning_banner(text: str) -> str:
    """A loud inline warning (truncated telemetry, missing inputs...)."""
    return (
        f'<p class="warning"><span class="chip st-warning">!</span> '
        f"{esc(text)}</p>"
    )
