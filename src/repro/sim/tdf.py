"""Timed Data-Flow kernel (SystemC-AMS/TDF analogue).

TDF models are signal-flow blocks "scheduled statically by considering their
producer-consumer dependencies" (paper Section II.A).  This module provides:

* :class:`TdfPort` / :class:`TdfSignal` — rate-annotated ports connected by
  buffered signals (``sca_tdf::sca_in/out`` and ``sca_tdf::sca_signal``);
* :class:`TdfModule` — the block base class with ``set_attributes`` /
  ``processing`` hooks;
* :class:`TdfCluster` — computes the repetition vector from the rate balance
  equations, derives a static schedule (producers before consumers) and
  executes it either standalone or embedded in the discrete-event kernel.

The per-sample buffering and the cluster bookkeeping are the "AMS interface"
overhead that makes TDF slightly slower than the plain discrete-event
integration in the paper's Tables I-III.
"""

from __future__ import annotations

from collections import deque
from fractions import Fraction
from typing import Callable, Iterable

from ..errors import SchedulingError, SimulationError


class TdfSignal:
    """A buffered point-to-multipoint connection between TDF ports."""

    def __init__(self, name: str = "", initial_samples: Iterable[float] = ()) -> None:
        self.name = name or f"tdf_signal_{id(self):x}"
        self.writer: "TdfOutPort | None" = None
        self.readers: list["TdfInPort"] = []
        self._buffers: dict[int, deque] = {}
        self._initial = list(initial_samples)

    def _attach_reader(self, port: "TdfInPort") -> None:
        self.readers.append(port)
        self._buffers[id(port)] = deque(self._initial)

    def push(self, value: float) -> None:
        """Append a sample for every reader."""
        for buffer in self._buffers.values():
            buffer.append(value)

    def pull(self, port: "TdfInPort") -> float:
        """Pop the next sample for ``port``."""
        buffer = self._buffers[id(port)]
        if not buffer:
            raise SimulationError(
                f"TDF signal {self.name!r} underflow when read by {port.name!r}"
            )
        return buffer.popleft()

    def available(self, port: "TdfInPort") -> int:
        """Number of samples waiting for ``port``."""
        return len(self._buffers[id(port)])

    @property
    def delay(self) -> int:
        """Number of initial samples (the ``set_delay`` attribute of SystemC-AMS)."""
        return len(self._initial)


class TdfPort:
    """Base class of TDF ports; carries the port rate."""

    def __init__(self, module: "TdfModule", name: str, rate: int = 1) -> None:
        if rate < 1:
            raise ValueError("port rate must be at least 1")
        self.module = module
        self.name = f"{module.name}.{name}"
        self.rate = rate
        self.signal: TdfSignal | None = None

    def set_rate(self, rate: int) -> None:
        """Change the port rate (allowed until the cluster is scheduled)."""
        if rate < 1:
            raise ValueError("port rate must be at least 1")
        self.rate = rate

    def bind(self, signal: TdfSignal) -> None:
        """Connect the port to a signal."""
        raise NotImplementedError


class TdfInPort(TdfPort):
    """An input port (``sca_tdf::sca_in<double>``)."""

    def bind(self, signal: TdfSignal) -> None:
        self.signal = signal
        signal._attach_reader(self)

    def read(self) -> float:
        """Consume and return the next input sample."""
        if self.signal is None:
            raise SimulationError(f"TDF input port {self.name!r} is not bound")
        return self.signal.pull(self)


class TdfOutPort(TdfPort):
    """An output port (``sca_tdf::sca_out<double>``)."""

    def bind(self, signal: TdfSignal) -> None:
        if signal.writer is not None:
            raise SimulationError(
                f"TDF signal {signal.name!r} already has a writer"
            )
        self.signal = signal
        signal.writer = self

    def write(self, value: float) -> None:
        """Produce one output sample."""
        if self.signal is None:
            raise SimulationError(f"TDF output port {self.name!r} is not bound")
        self.signal.push(value)


class TdfModule:
    """Base class of TDF processing blocks.

    Subclasses create ports in their constructor, optionally override
    :meth:`set_attributes` (to set rates or request a module timestep) and
    implement :meth:`processing`, which is called once per activation by the
    static schedule.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.activation_count = 0
        self.requested_timestep: float | None = None

    # -- construction helpers --------------------------------------------------------
    def in_port(self, name: str, rate: int = 1) -> TdfInPort:
        """Create an input port."""
        return TdfInPort(self, name, rate)

    def out_port(self, name: str, rate: int = 1) -> TdfOutPort:
        """Create an output port."""
        return TdfOutPort(self, name, rate)

    def set_timestep(self, timestep: float) -> None:
        """Request the module activation period (like ``set_timestep``)."""
        if timestep <= 0.0:
            raise ValueError("timestep must be positive")
        self.requested_timestep = timestep

    # -- hooks -------------------------------------------------------------------------
    def set_attributes(self) -> None:
        """Attribute-setting hook, called once before scheduling."""

    def initialize(self) -> None:
        """Initialisation hook, called once after scheduling."""

    def processing(self) -> None:
        """Per-activation behaviour; must be overridden."""
        raise NotImplementedError

    # -- introspection --------------------------------------------------------------------
    def ports(self) -> list[TdfPort]:
        """Every port created by the module (including ports held in containers)."""
        found: list[TdfPort] = []
        for value in vars(self).values():
            if isinstance(value, TdfPort):
                found.append(value)
            elif isinstance(value, dict):
                found.extend(item for item in value.values() if isinstance(item, TdfPort))
            elif isinstance(value, (list, tuple)):
                found.extend(item for item in value if isinstance(item, TdfPort))
        return found

    @property
    def time(self) -> float:
        """Current cluster time (set by the scheduler before each activation)."""
        return getattr(self, "_cluster_time", 0.0)


class TdfCluster:
    """A set of connected TDF modules executed under one static schedule."""

    def __init__(self, name: str = "tdf_cluster") -> None:
        self.name = name
        self.modules: list[TdfModule] = []
        self.signals: list[TdfSignal] = []
        self._schedule: list[tuple[TdfModule, int]] | None = None
        self.timestep: float | None = None
        self.period_count = 0

    # -- construction ----------------------------------------------------------------------
    def add(self, module: TdfModule) -> TdfModule:
        """Register a module with the cluster."""
        self.modules.append(module)
        return module

    def signal(self, name: str = "", initial_samples: Iterable[float] = ()) -> TdfSignal:
        """Create a signal owned by the cluster."""
        signal = TdfSignal(name or f"{self.name}.sig{len(self.signals)}", initial_samples)
        self.signals.append(signal)
        return signal

    def connect(self, writer: TdfOutPort, *readers: TdfInPort, delay_samples: int = 0) -> TdfSignal:
        """Create a signal, bind ``writer`` and every reader, and return it."""
        signal = self.signal(initial_samples=[0.0] * delay_samples)
        writer.bind(signal)
        for reader in readers:
            reader.bind(signal)
        return signal

    # -- scheduling ---------------------------------------------------------------------------
    def _repetition_vector(self) -> dict[TdfModule, int]:
        """Solve the rate balance equations (SDF repetition vector)."""
        repetitions: dict[TdfModule, Fraction] = {}

        def propagate(module: TdfModule, value: Fraction) -> None:
            if module in repetitions:
                if repetitions[module] != value:
                    raise SchedulingError(
                        f"inconsistent port rates around module {module.name!r}"
                    )
                return
            repetitions[module] = value
            for port in module.ports():
                signal = port.signal
                if signal is None:
                    continue
                if isinstance(port, TdfOutPort):
                    produced = value * port.rate
                    for reader in signal.readers:
                        propagate(reader.module, produced / reader.rate)
                else:
                    consumed = value * port.rate
                    if signal.writer is not None:
                        propagate(signal.writer.module, consumed / signal.writer.rate)

        for module in self.modules:
            if module not in repetitions:
                propagate(module, Fraction(1))

        denominators = [value.denominator for value in repetitions.values()]
        scale = 1
        for denominator in denominators:
            scale = scale * denominator // _gcd(scale, denominator)
        integral = {module: int(value * scale) for module, value in repetitions.items()}
        divisor = 0
        for value in integral.values():
            divisor = _gcd(divisor, value)
        return {module: value // max(divisor, 1) for module, value in integral.items()}

    def schedule(self) -> list[tuple[TdfModule, int]]:
        """Compute (and cache) the static schedule.

        The schedule lists ``(module, activation_index)`` pairs ordered so
        that every read finds its samples available, assuming feedback loops
        carry enough initial (delay) samples.
        """
        if self._schedule is not None:
            return self._schedule
        for module in self.modules:
            module.set_attributes()
        self._resolve_timestep()
        repetitions = self._repetition_vector()

        # List scheduling: repeatedly fire any module whose inputs have enough
        # samples, using a token-count simulation of one cluster period.
        tokens: dict[tuple[int, int], int] = {}
        for signal in self.signals:
            for reader in signal.readers:
                tokens[(id(signal), id(reader))] = signal.delay
        remaining = {module: count for module, count in repetitions.items()}
        schedule: list[tuple[TdfModule, int]] = []
        progress = True
        while any(remaining.values()) and progress:
            progress = False
            for module in self.modules:
                if remaining[module] == 0:
                    continue
                if not self._can_fire(module, tokens):
                    continue
                self._fire_tokens(module, tokens)
                schedule.append((module, repetitions[module] - remaining[module]))
                remaining[module] -= 1
                progress = True
        if any(remaining.values()):
            blocked = [module.name for module, count in remaining.items() if count]
            raise SchedulingError(
                f"cannot statically schedule cluster {self.name!r}; modules "
                f"{blocked} are blocked (feedback loop without delay samples?)"
            )
        for module in self.modules:
            module.initialize()
        self._schedule = schedule
        return schedule

    def _can_fire(self, module: TdfModule, tokens: dict) -> bool:
        for port in module.ports():
            if isinstance(port, TdfInPort) and port.signal is not None:
                if tokens[(id(port.signal), id(port))] < port.rate:
                    return False
        return True

    def _fire_tokens(self, module: TdfModule, tokens: dict) -> None:
        for port in module.ports():
            signal = port.signal
            if signal is None:
                continue
            if isinstance(port, TdfInPort):
                tokens[(id(signal), id(port))] -= port.rate
            else:
                for reader in signal.readers:
                    tokens[(id(signal), id(reader))] += port.rate

    def _resolve_timestep(self) -> None:
        requested = {
            module.requested_timestep
            for module in self.modules
            if module.requested_timestep is not None
        }
        if self.timestep is None:
            if len(requested) > 1:
                raise SchedulingError(
                    f"conflicting module timesteps in cluster {self.name!r}: {sorted(requested)}"
                )
            self.timestep = requested.pop() if requested else None
        if self.timestep is None:
            raise SchedulingError(
                f"cluster {self.name!r} has no timestep; set cluster.timestep or "
                "call set_timestep() in a module"
            )

    # -- execution ---------------------------------------------------------------------------
    def run_period(self, time: float) -> None:
        """Execute one cluster period (every module its repetition count)."""
        schedule = self.schedule()
        for module, _ in schedule:
            module._cluster_time = time
            module.processing()
            module.activation_count += 1
        self.period_count += 1

    def run(self, duration: float, start_time: float = 0.0) -> float:
        """Run standalone for ``duration`` seconds of cluster time."""
        self.schedule()
        assert self.timestep is not None
        steps = int(round(duration / self.timestep))
        time = start_time
        for index in range(steps):
            time = start_time + (index + 1) * self.timestep
            self.run_period(time)
        return time


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a
