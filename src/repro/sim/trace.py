"""Waveform tracing used by every simulation engine."""

from __future__ import annotations

from typing import Iterator, Mapping

import numpy as np


class Trace:
    """A recorded waveform: monotonically increasing times and sampled values."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._times: list[float] = []
        self._values: list[float] = []

    def append(self, time: float, value: float) -> None:
        """Record one sample."""
        self._times.append(time)
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> np.ndarray:
        """Sample times as a numpy array."""
        return np.asarray(self._times)

    @property
    def values(self) -> np.ndarray:
        """Sample values as a numpy array."""
        return np.asarray(self._values)

    def final_value(self) -> float:
        """The last recorded value (0 when empty)."""
        return self._values[-1] if self._values else 0.0

    def resample(self, times: np.ndarray) -> np.ndarray:
        """Linearly interpolate the waveform onto ``times``."""
        if not self._times:
            return np.zeros_like(times)
        return np.interp(times, self.times, self.values)


class TraceSet:
    """A named collection of traces recorded during one simulation."""

    def __init__(self, traces: Mapping[str, Trace] | None = None) -> None:
        self._traces: dict[str, Trace] = dict(traces or {})

    def add(self, name: str) -> Trace:
        """Create (or return) the trace called ``name``."""
        if name not in self._traces:
            self._traces[name] = Trace(name)
        return self._traces[name]

    def __getitem__(self, name: str) -> Trace:
        return self._traces[name]

    def __contains__(self, name: str) -> bool:
        return name in self._traces

    def __iter__(self) -> Iterator[str]:
        return iter(self._traces)

    def names(self) -> list[str]:
        """Names of every recorded trace."""
        return list(self._traces)

    def waveform(self, name: str) -> np.ndarray:
        """Values of the trace called ``name``."""
        return self._traces[name].values

    def times(self, name: str) -> np.ndarray:
        """Sample times of the trace called ``name``."""
        return self._traces[name].times
