"""Discrete-event simulation kernel (SystemC-DE analogue)."""

from .kernel import Event, Kernel, SignalUpdate, ThreadProcess
from .module import Clock, Module, PeriodicTicker
from .signal import Signal
from .simtime import FS, MS, NS, PS, SEC, US, format_time, quantize

__all__ = [
    "Clock",
    "Event",
    "FS",
    "Kernel",
    "MS",
    "Module",
    "NS",
    "PS",
    "PeriodicTicker",
    "SEC",
    "Signal",
    "SignalUpdate",
    "ThreadProcess",
    "US",
    "format_time",
    "quantize",
]
