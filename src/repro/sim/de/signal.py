"""Signals: delta-delayed communication channels (like ``sc_signal``)."""

from __future__ import annotations

from typing import Generic, TypeVar

from .kernel import Event, Kernel, SignalUpdate

T = TypeVar("T")


class Signal(Generic[T], SignalUpdate):
    """A value holder whose writes become visible one delta cycle later.

    Reading returns the *current* value; writing stores a *next* value and
    requests an update, exactly like ``sc_signal``.  Processes can be made
    sensitive to :attr:`changed`, which is notified whenever an update
    actually modifies the value.
    """

    __slots__ = ("kernel", "name", "_current", "_next", "_update_pending", "changed")

    def __init__(self, kernel: Kernel, initial: T, name: str = "") -> None:
        self.kernel = kernel
        self.name = name or f"signal_{id(self):x}"
        self._current: T = initial
        self._next: T = initial
        self._update_pending = False
        self.changed = Event(kernel, f"{self.name}.changed")

    # -- access -------------------------------------------------------------------
    def read(self) -> T:
        """Return the current value."""
        return self._current

    def write(self, value: T) -> None:
        """Schedule ``value`` to become the current value in the next delta."""
        self._next = value
        if not self._update_pending:
            self._update_pending = True
            self.kernel.request_update(self)

    @property
    def value(self) -> T:
        """Alias for :meth:`read` (convenient in expressions)."""
        return self._current

    # -- update phase ------------------------------------------------------------------
    def apply(self) -> None:
        """Apply the pending write (called by the kernel's update phase)."""
        self._update_pending = False
        if self._next != self._current:
            self._current = self._next
            self.changed.notify()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Signal({self.name!r}, value={self._current!r})"
