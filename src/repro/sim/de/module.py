"""Module base class and clock generator for the discrete-event kernel."""

from __future__ import annotations

from typing import Callable, Iterable

from .kernel import Event, Kernel, ThreadProcess
from .signal import Signal


class Module:
    """Base class for hierarchical discrete-event components (like ``sc_module``).

    Subclasses register processes with :meth:`add_method` (static sensitivity,
    like ``SC_METHOD``) or :meth:`add_thread` (generator coroutine, like
    ``SC_THREAD``), and create communication objects with :meth:`signal` and
    :meth:`event`.
    """

    def __init__(self, kernel: Kernel, name: str) -> None:
        self.kernel = kernel
        self.name = name

    # -- construction helpers ----------------------------------------------------------
    def signal(self, initial, name: str = "") -> Signal:
        """Create a signal owned by this module."""
        return Signal(self.kernel, initial, name=f"{self.name}.{name or 'signal'}")

    def event(self, name: str = "") -> Event:
        """Create an event owned by this module."""
        return Event(self.kernel, name=f"{self.name}.{name or 'event'}")

    def add_method(
        self, callback: Callable[[], None], sensitive: Iterable[Event] = ()
    ) -> None:
        """Register a method process with a static sensitivity list."""
        for event in sensitive:
            event.add_static_method(callback)

    def add_thread(self, generator_function: Callable[[], "object"]) -> ThreadProcess:
        """Register and start a thread process from a generator function."""
        return self.kernel.spawn_thread(
            generator_function(), name=f"{self.name}.{generator_function.__name__}"
        )

    # -- time helpers --------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.kernel.now

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}({self.name!r})"


class Clock(Module):
    """A periodic boolean clock signal (like ``sc_clock``)."""

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        period: float,
        duty_cycle: float = 0.5,
        start_high: bool = True,
    ) -> None:
        super().__init__(kernel, name)
        if period <= 0.0:
            raise ValueError("clock period must be positive")
        if not 0.0 < duty_cycle < 1.0:
            raise ValueError("duty cycle must be within (0, 1)")
        self.period = period
        self.duty_cycle = duty_cycle
        self.out = self.signal(start_high, "out")
        self.posedge = self.event("posedge")
        self.negedge = self.event("negedge")
        self._start_high = start_high
        self.cycle_count = 0
        self.add_thread(self._drive)

    def _drive(self):
        high_time = self.period * self.duty_cycle
        low_time = self.period - high_time
        value = self._start_high
        while True:
            self.out.write(value)
            if value:
                self.posedge.notify()
                self.cycle_count += 1
                yield high_time
            else:
                self.negedge.notify()
                yield low_time
            value = not value


class PeriodicTicker(Module):
    """Invokes a callback at a fixed period (a lightweight ``SC_METHOD`` timer).

    This is the mechanism used to step analog models that execute at a fixed
    timestep inside the discrete-event platform.
    """

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        period: float,
        callback: Callable[[float], None],
        start_delay: float | None = None,
    ) -> None:
        super().__init__(kernel, name)
        if period <= 0.0:
            raise ValueError("ticker period must be positive")
        self.period = period
        self.callback = callback
        self.tick_count = 0
        self._first_delay = period if start_delay is None else start_delay
        # Ticks fire on the absolute grid (origin + first + k*period) so that
        # millions of ticks do not drift away from the nominal timestep.
        self._grid_origin = kernel.now + self._first_delay
        self.kernel.schedule(self._first_delay, self._tick)

    def _tick(self) -> None:
        self.tick_count += 1
        self.callback(self.kernel.now)
        self.kernel.schedule_abs(
            self._grid_origin + self.tick_count * self.period, self._tick
        )
