"""Simulation-time helpers for the discrete-event kernel.

Time is represented as a float number of seconds.  To avoid the accumulation
of floating-point error over millions of fixed-step events, helpers are
provided to quantise times onto a femtosecond grid, which is what SystemC does
with its integer time resolution.
"""

from __future__ import annotations

#: Convenience unit constants (seconds).
SEC = 1.0
MS = 1e-3
US = 1e-6
NS = 1e-9
PS = 1e-12
FS = 1e-15

#: The kernel's time resolution: all event times are quantised to this grid.
RESOLUTION = 1e-15


def quantize(time: float) -> float:
    """Snap ``time`` onto the femtosecond grid used by the kernel."""
    return round(time / RESOLUTION) * RESOLUTION


def format_time(time: float) -> str:
    """Render a time with an appropriate engineering unit (for reports/traces)."""
    if time == 0.0:
        return "0 s"
    for unit, scale in (("s", 1.0), ("ms", MS), ("us", US), ("ns", NS), ("ps", PS), ("fs", FS)):
        if abs(time) >= scale:
            return f"{time / scale:.6g} {unit}"
    return f"{time:.3e} s"
