"""Discrete-event simulation kernel (the SystemC-DE analogue).

The kernel implements the subset of SystemC's simulation semantics the
virtual platform and the generated SystemC-DE models need:

* timed event notifications kept in a binary heap;
* evaluate/update *delta cycles* so that signals written during one
  evaluation phase only become visible in the next one;
* method processes with static or dynamic sensitivity, and thread processes
  written as Python generators that ``yield`` waits.

The scheduler loop mirrors the SystemC reference implementation: run every
runnable process (evaluation phase), apply signal updates (update phase),
schedule processes woken by the resulting value changes into a new delta
cycle, and only when no delta work is left advance simulated time to the next
timed notification.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, Iterable

from ...errors import SimulationError
from ...obs.tracer import TRACER
from .simtime import quantize


class Event:
    """A notifiable synchronisation object (like ``sc_event``)."""

    __slots__ = ("kernel", "name", "_waiting_methods", "_waiting_threads")

    def __init__(self, kernel: "Kernel", name: str = "") -> None:
        self.kernel = kernel
        self.name = name or f"event_{id(self):x}"
        self._waiting_methods: list[Callable[[], None]] = []
        self._waiting_threads: list["ThreadProcess"] = []

    # -- subscription ------------------------------------------------------------
    def add_static_method(self, callback: Callable[[], None]) -> None:
        """Statically sensitise a method process to this event."""
        self._waiting_methods.append(callback)

    def wait_thread(self, process: "ThreadProcess") -> None:
        """Register a thread process waiting (dynamically) on this event."""
        self._waiting_threads.append(process)

    # -- notification ---------------------------------------------------------------
    def notify(self, delay: float | None = None) -> None:
        """Notify the event.

        ``delay=None`` performs an immediate (same evaluation phase) trigger;
        ``delay=0.0`` is a delta notification; a positive delay is a timed
        notification, as in SystemC.
        """
        if delay is None:
            self.kernel._trigger_event(self)
        elif delay == 0.0:
            self.kernel._schedule_delta(self._trigger)
        else:
            self.kernel.schedule(delay, self._trigger)

    def _trigger(self) -> None:
        self.kernel._trigger_event(self)


class ThreadProcess:
    """A coroutine-style process: a generator yielding waits.

    Yield values understood by the kernel:

    * a ``float`` — wait for that many seconds;
    * an :class:`Event` — wait until the event is notified;
    * ``None`` — wait one delta cycle.
    """

    __slots__ = ("kernel", "name", "generator", "terminated")

    def __init__(self, kernel: "Kernel", name: str, generator) -> None:
        self.kernel = kernel
        self.name = name
        self.generator = generator
        self.terminated = False

    def start(self) -> None:
        """Schedule the first activation at the current time."""
        self.kernel._schedule_delta(self.resume)

    def resume(self) -> None:
        """Run the process until its next wait."""
        if self.terminated:
            return
        try:
            request = next(self.generator)
        except StopIteration:
            self.terminated = True
            return
        if request is None:
            self.kernel._schedule_delta(self.resume)
        elif isinstance(request, Event):
            request.wait_thread(self)
        elif isinstance(request, (int, float)):
            self.kernel.schedule(float(request), self.resume)
        else:
            raise SimulationError(
                f"thread process {self.name!r} yielded an unsupported wait "
                f"request: {request!r}"
            )


class Kernel:
    """The discrete-event scheduler."""

    def __init__(self) -> None:
        self.now = 0.0
        #: Simulated-time horizon of the active :meth:`run` call (``None``
        #: outside a bounded run).  Batch-oriented processes — the virtual
        #: platform's CPU block driver — read this to clamp how far ahead of
        #: ``now`` they may execute without overshooting the run boundary.
        self.end_time: float | None = None
        self._sequence = 0
        self._timed: list[tuple[float, int, Callable[[], None]]] = []
        self._runnable: list[Callable[[], None]] = []
        self._delta_pending: list[Callable[[], None]] = []
        self._update_requests: list["SignalUpdate"] = []
        # Spare list objects recycled by the delta-cycle loop; allocating fresh
        # lists every delta dominated the kernel's allocation profile.
        self._runnable_spare: list[Callable[[], None]] = []
        self._update_spare: list["SignalUpdate"] = []
        self._running = False
        self._finished = False
        self.delta_count = 0
        self.event_count = 0

    # -- scheduling primitives -----------------------------------------------------------
    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0.0:
            raise SimulationError("cannot schedule an action in the past")
        self._sequence += 1
        heappush(self._timed, (quantize(self.now + delay), self._sequence, action))

    def schedule_at(self, time: float, action: Callable[[], None]) -> None:
        """Schedule ``action`` at the absolute time ``time``."""
        self.schedule(max(0.0, time - self.now), action)

    def schedule_abs(self, time: float, action: Callable[[], None]) -> None:
        """Schedule ``action`` at the absolute (quantised) time ``time``.

        Equivalent to :meth:`schedule_at` but skips the relative-delay round
        trip; times earlier than ``now`` are clamped to ``now``.  This is the
        fast path used by periodic processes, which already know the absolute
        grid point they fire at next.
        """
        at = quantize(time)
        now = self.now
        if at < now:
            at = now
        self._sequence += 1
        heappush(self._timed, (at, self._sequence, action))

    def _schedule_delta(self, action: Callable[[], None]) -> None:
        self._delta_pending.append(action)

    def _trigger_event(self, event: Event) -> None:
        self.event_count += 1
        # Static sensitivity lists are dispatched with one C-level extend
        # instead of a per-callback Python loop.
        methods = event._waiting_methods
        if methods:
            self._runnable.extend(methods)
        waiting = event._waiting_threads
        if waiting:
            event._waiting_threads = []
            runnable = self._runnable
            for process in waiting:
                runnable.append(process.resume)

    def request_update(self, update: "SignalUpdate") -> None:
        """Queue a signal update to be applied at the end of the evaluation phase."""
        self._update_requests.append(update)

    # -- processes ------------------------------------------------------------------------
    def spawn_thread(self, generator, name: str = "") -> ThreadProcess:
        """Create and start a thread process from a generator."""
        process = ThreadProcess(self, name or f"thread_{self._sequence}", generator)
        process.start()
        return process

    # -- simulation loop -------------------------------------------------------------------
    def stop(self) -> None:
        """Stop the simulation at the end of the current delta cycle."""
        self._finished = True

    def run(self, duration: float | None = None) -> float:
        """Run the simulation.

        ``duration`` bounds the simulated time starting from ``now``; when
        omitted the kernel runs until no work is left.  Returns the final
        simulated time.
        """
        if self._running:
            raise SimulationError("the kernel is already running")
        self._running = True
        self._finished = False
        end_time = None if duration is None else quantize(self.now + duration)
        self.end_time = end_time
        timed = self._timed
        # Observability: a single attribute check selects between two copies
        # of the scheduler loop — the plain one is the loop the seed shipped,
        # so disabled tracing adds zero per-event work.
        tracer = TRACER
        trace = tracer.enabled
        if trace:
            run_start = tracer.now()
            events_before = self.event_count
            deltas_before = self.delta_count
            queue_max = len(timed)
        try:
            if trace:
                while not self._finished:
                    self._run_delta_cycles()
                    if not timed:
                        break
                    next_time = timed[0][0]
                    if end_time is not None and next_time > end_time + 1e-18:
                        self.now = end_time
                        break
                    self.now = next_time
                    if len(timed) > queue_max:
                        queue_max = len(timed)
                    horizon = next_time + 1e-18
                    runnable = self._runnable
                    while timed and timed[0][0] <= horizon:
                        runnable.append(heappop(timed)[2])
            else:
                while not self._finished:
                    self._run_delta_cycles()
                    if not timed:
                        break
                    next_time = timed[0][0]
                    if end_time is not None and next_time > end_time + 1e-18:
                        self.now = end_time
                        break
                    self.now = next_time
                    horizon = next_time + 1e-18
                    runnable = self._runnable
                    while timed and timed[0][0] <= horizon:
                        runnable.append(heappop(timed)[2])
        finally:
            self._running = False
            self.end_time = None
            if trace:
                events = self.event_count - events_before
                deltas = self.delta_count - deltas_before
                tracer.add("de.runs", 1.0)
                tracer.add("de.events", float(events))
                tracer.add("de.deltas", float(deltas))
                tracer.end(
                    "de.run",
                    run_start,
                    "de",
                    events=events,
                    deltas=deltas,
                    queue_max=queue_max,
                )
        if end_time is not None and self.now < end_time:
            self.now = end_time
        return self.now

    def _run_delta_cycles(self) -> None:
        while self._runnable or self._delta_pending:
            if self._finished:
                return
            # Evaluation phase.  The drained lists are recycled as the next
            # delta's spares instead of being re-allocated; actions triggered
            # during evaluation land in the (empty) swapped-in lists, so the
            # visibility semantics are identical to the allocating version.
            runnable = self._runnable
            pending = self._delta_pending
            if pending:
                runnable.extend(pending)
                pending.clear()
            # Swap BEFORE running the actions and clear in a finally, so an
            # exception escaping a process can neither alias the two lists
            # nor leave stale actions behind for the next run() call.
            self._runnable = self._runnable_spare
            self._runnable_spare = runnable
            try:
                for action in runnable:
                    action()
            finally:
                runnable.clear()
            # Update phase.  Updates requested while applying updates belong
            # to the next delta, hence the swap before iterating.
            updates = self._update_requests
            if updates:
                self._update_requests = self._update_spare
                self._update_spare = updates
                try:
                    for update in updates:
                        update.apply()
                finally:
                    updates.clear()
            self.delta_count += 1

    # -- queries ---------------------------------------------------------------------------
    def pending_activity(self) -> bool:
        """Whether any timed or delta work remains."""
        return bool(self._timed or self._runnable or self._delta_pending)


class SignalUpdate:
    """Protocol object queued by signals during the evaluation phase."""

    def apply(self) -> None:  # pragma: no cover - interface definition
        raise NotImplementedError
