"""Co-simulation bridge between the digital kernel and the analog engine.

Before abstraction, the paper's virtual platform couples the SystemC digital
models with the Verilog-AMS device through Questa ADMS: two simulators that
must exchange values and synchronise at every analog timestep, which is the
configuration the methodology is designed to eliminate.  This module rebuilds
that coupling: the analog side lives behind a byte-marshalled transaction
interface (:class:`AnalogCosimServer`), and :class:`CoSimulationBridge` is a
discrete-event module that, at every synchronisation point, packs the digital
inputs, performs the transaction, unpacks the results and publishes them on
discrete-event signals.

The cost of co-simulation therefore has the same two components as the real
tool chain: the slow conservative solve (the reference engine) and the
per-synchronisation marshalling/handshaking overhead.
"""

from __future__ import annotations

import struct
from typing import Mapping

from ..errors import CoSimulationError
from .ams import ReferenceAmsSimulator
from .de import Kernel, Module, PeriodicTicker, Signal


class AnalogCosimServer:
    """The "other simulator": owns the analog engine behind a message interface.

    Requests and responses are packed binary frames (little-endian doubles),
    modelling the data conversion that crosses the simulator boundary in a
    real co-simulation backplane.
    """

    def __init__(
        self,
        simulator: ReferenceAmsSimulator,
        observed_quantities: list[str],
    ) -> None:
        self.simulator = simulator
        self.observed_quantities = list(observed_quantities)
        self.input_names = list(simulator.inputs)
        self.transaction_count = 0
        self._request_format = "<" + "d" * len(self.input_names)
        self._response_format = "<" + "d" * len(self.observed_quantities)

    # -- marshalled interface -------------------------------------------------------------
    def pack_request(self, inputs: Mapping[str, float]) -> bytes:
        """Marshal the digital-side input values into a request frame."""
        try:
            values = [float(inputs[name]) for name in self.input_names]
        except KeyError as exc:
            raise CoSimulationError(f"missing co-simulation input {exc}") from exc
        return struct.pack(self._request_format, *values)

    def transact(self, request: bytes) -> bytes:
        """Advance the analog engine by one synchronisation step."""
        values = struct.unpack(self._request_format, request)
        self.simulator.step(dict(zip(self.input_names, values)))
        observed = [self.simulator.value(name) for name in self.observed_quantities]
        self.transaction_count += 1
        return struct.pack(self._response_format, *observed)

    def unpack_response(self, response: bytes) -> dict[str, float]:
        """Unmarshal a response frame into named analog quantities."""
        values = struct.unpack(self._response_format, response)
        return dict(zip(self.observed_quantities, values))


class CoSimulationBridge(Module):
    """Discrete-event side of the co-simulation coupling.

    At every analog timestep the bridge reads its input signals, performs one
    marshalled transaction against the analog server and drives its output
    signals with the returned quantities.
    """

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        server: AnalogCosimServer,
        input_signals: Mapping[str, Signal],
        output_signals: Mapping[str, Signal],
        timestep: float,
    ) -> None:
        super().__init__(kernel, name)
        self.server = server
        self.input_signals = dict(input_signals)
        self.output_signals = dict(output_signals)
        self.timestep = float(timestep)
        self.sync_count = 0
        missing_outputs = set(output_signals) - set(server.observed_quantities)
        if missing_outputs:
            raise CoSimulationError(
                f"bridge outputs {sorted(missing_outputs)} are not observed by "
                "the analog server"
            )
        self._ticker = PeriodicTicker(kernel, f"{name}.sync", self.timestep, self._synchronise)

    def _synchronise(self, now: float) -> None:
        # Wait one delta cycle so that stimulus signals written at this
        # synchronisation point are visible before values are marshalled.
        self.kernel._schedule_delta(lambda: self._exchange(now))

    def _exchange(self, now: float) -> None:
        inputs = {name: signal.read() for name, signal in self.input_signals.items()}
        request = self.server.pack_request(inputs)
        response = self.server.transact(request)
        observed = self.server.unpack_response(response)
        for name, signal in self.output_signals.items():
            signal.write(observed[name])
        self.sync_count += 1
