"""Integration wrappers: executing analog models inside the simulation kernels.

The code generators of :mod:`repro.core.codegen` emit the SystemC-DE and
SystemC-AMS/TDF *source text*; the classes here are their executable
counterparts for this reproduction's kernels:

* :class:`DeSignalFlowModule` — a discrete-event module stepping a compiled
  signal-flow model every timestep (the SystemC-DE integration of Table I);
* :class:`TdfSignalFlowModule` — the same model inside the TDF kernel (the
  SystemC-AMS/TDF integration);
* :class:`ElnDeModule` — the conservative ELN solver embedded in the
  discrete-event kernel (the SystemC-AMS/ELN integration);
* source and probe modules for both kernels so that, as in the paper, the
  stimulus generator always lives in the same model of computation as the
  device under test.
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..errors import SimulationError
from .de import Kernel, Module, PeriodicTicker, Signal
from .eln import ElnModel
from .tdf import TdfModule
from .trace import Trace, TraceSet


def _after_deltas(kernel: Kernel, deltas: int, action: Callable[[], None]) -> None:
    """Run ``action`` after ``deltas`` delta cycles at the current time.

    Discrete-event signals update at the end of the evaluation phase, so a
    consumer activated in the same phase as the producer would read the
    previous value.  Deferring by one delta per producer/consumer hop keeps
    the sampled waveforms aligned with the other engines without introducing
    artificial timestep delays.
    """
    if deltas <= 0:
        action()
        return
    kernel._schedule_delta(lambda: _after_deltas(kernel, deltas - 1, action))


class DeSourceModule(Module):
    """Drives a discrete-event signal from a stimulus callable, every timestep."""

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        waveform: Callable[[float], float],
        timestep: float,
    ) -> None:
        super().__init__(kernel, name)
        self.waveform = waveform
        self.out = self.signal(waveform(0.0), "out")
        self._ticker = PeriodicTicker(kernel, f"{name}.tick", timestep, self._drive, start_delay=0.0)

    def _drive(self, now: float) -> None:
        self.out.write(self.waveform(now))


class DeProbeModule(Module):
    """Samples a discrete-event signal every timestep into a trace."""

    def __init__(self, kernel: Kernel, name: str, signal: Signal, timestep: float) -> None:
        super().__init__(kernel, name)
        self.watched = signal
        self.trace = Trace(name)
        self._ticker = PeriodicTicker(kernel, f"{name}.tick", timestep, self._sample)

    def _sample(self, now: float) -> None:
        # Defer past the source (1 delta) and device (1 delta) updates so that
        # the recorded sample reflects the value settled at this timestep.
        _after_deltas(self.kernel, 2, lambda: self.trace.append(now, self.watched.read()))


class DeSignalFlowModule(Module):
    """A generated signal-flow model stepped by the discrete-event kernel."""

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        model: object,
        input_signals: Mapping[str, Signal],
        timestep: float | None = None,
    ) -> None:
        super().__init__(kernel, name)
        self.model = model
        self.timestep = float(timestep if timestep is not None else getattr(model, "TIMESTEP"))
        self.input_names = list(getattr(model, "INPUTS"))
        self.output_names = list(getattr(model, "OUTPUTS"))
        missing = [name for name in self.input_names if name not in input_signals]
        if missing:
            raise SimulationError(
                f"module {name!r} is missing input signals for {missing}"
            )
        self.input_signals = {name: input_signals[name] for name in self.input_names}
        self.output_signals = {
            output: self.signal(0.0, f"out_{index}")
            for index, output in enumerate(self.output_names)
        }
        self.step_count = 0
        self._ticker = PeriodicTicker(kernel, f"{name}.tick", self.timestep, self._step)

    def _step(self, now: float) -> None:
        # Wait one delta so that stimulus signals written at this timestep have
        # been updated before the model samples them.
        _after_deltas(self.kernel, 1, lambda: self._evaluate(now))

    def _evaluate(self, now: float) -> None:
        values = [self.input_signals[name].read() for name in self.input_names]
        result = self.model.step(*values, now)
        if len(self.output_names) == 1:
            outputs = (result,)
        else:
            outputs = tuple(result)
        for name, value in zip(self.output_names, outputs):
            self.output_signals[name].write(value)
        self.step_count += 1

    def output(self, name: str | None = None) -> Signal:
        """Return the signal carrying the output called ``name`` (default: first)."""
        if name is None:
            name = self.output_names[0]
        return self.output_signals[name]


class ElnDeModule(Module):
    """The conservative ELN solver embedded in the discrete-event kernel."""

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        model: ElnModel,
        input_signals: Mapping[str, Signal],
        observed: list[str],
    ) -> None:
        super().__init__(kernel, name)
        self.model = model
        self.observed = list(observed)
        missing = [name for name in model.inputs if name not in input_signals]
        if missing:
            raise SimulationError(f"ELN module {name!r} is missing inputs {missing}")
        self.input_signals = {name: input_signals[name] for name in model.inputs}
        self.output_signals = {
            quantity: self.signal(0.0, f"out_{index}")
            for index, quantity in enumerate(self.observed)
        }
        self._ticker = PeriodicTicker(kernel, f"{name}.tick", model.timestep, self._step)

    def _step(self, now: float) -> None:
        _after_deltas(self.kernel, 1, self._evaluate)

    def _evaluate(self) -> None:
        self.model.step({name: signal.read() for name, signal in self.input_signals.items()})
        for quantity, signal in self.output_signals.items():
            signal.write(self.model.value(quantity))

    def output(self, quantity: str | None = None) -> Signal:
        """Return the signal carrying ``quantity`` (default: first observed)."""
        if quantity is None:
            quantity = self.observed[0]
        return self.output_signals[quantity]


# ---------------------------------------------------------------------------------
# TDF wrappers
# ---------------------------------------------------------------------------------
class TdfSourceModule(TdfModule):
    """A TDF block producing samples of a stimulus callable."""

    def __init__(self, name: str, waveform: Callable[[float], float], timestep: float) -> None:
        super().__init__(name)
        self.waveform = waveform
        self.out = self.out_port("out")
        self._timestep = timestep

    def set_attributes(self) -> None:
        self.set_timestep(self._timestep)

    def processing(self) -> None:
        self.out.write(self.waveform(self.time))


class TdfProbeModule(TdfModule):
    """A TDF block recording its input samples into a trace."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.inp = self.in_port("in")
        self.trace = Trace(name)

    def processing(self) -> None:
        self.trace.append(self.time, self.inp.read())


class TdfSignalFlowModule(TdfModule):
    """A generated signal-flow model executed as a TDF block."""

    def __init__(self, name: str, model: object) -> None:
        super().__init__(name)
        self.model = model
        self.input_names = list(getattr(model, "INPUTS"))
        self.output_names = list(getattr(model, "OUTPUTS"))
        self.inputs = {name: self.in_port(f"in_{index}") for index, name in enumerate(self.input_names)}
        self.outputs = {name: self.out_port(f"out_{index}") for index, name in enumerate(self.output_names)}

    def set_attributes(self) -> None:
        self.set_timestep(float(getattr(self.model, "TIMESTEP")))

    def processing(self) -> None:
        values = [self.inputs[name].read() for name in self.input_names]
        result = self.model.step(*values, self.time)
        outputs = (result,) if len(self.output_names) == 1 else tuple(result)
        for name, value in zip(self.output_names, outputs):
            self.outputs[name].write(value)


class TdfDeBridge(Module):
    """Runs a TDF cluster from the discrete-event kernel, one period per timestep.

    This mirrors the SystemC-AMS coupling where TDF clusters are activated by
    the SystemC kernel at their cluster period boundaries.
    """

    def __init__(self, kernel: Kernel, name: str, cluster) -> None:
        super().__init__(kernel, name)
        self.cluster = cluster
        cluster.schedule()
        if cluster.timestep is None:
            raise SimulationError("the TDF cluster has no timestep")
        self._ticker = PeriodicTicker(kernel, f"{name}.tick", cluster.timestep, self._activate)

    def _activate(self, now: float) -> None:
        self.cluster.run_period(now)


class TdfToDeSignal(TdfModule):
    """A TDF block publishing its input samples onto a discrete-event signal."""

    def __init__(self, name: str, signal: Signal) -> None:
        super().__init__(name)
        self.inp = self.in_port("in")
        self.signal = signal

    def processing(self) -> None:
        self.signal.write(self.inp.read())


class DeToTdfSignal(TdfModule):
    """A TDF block sampling a discrete-event signal into its output port."""

    def __init__(self, name: str, signal: Signal) -> None:
        super().__init__(name)
        self.out = self.out_port("out")
        self.signal = signal

    def processing(self) -> None:
        self.out.write(self.signal.read())
