"""Electrical Linear Network solver (SystemC-AMS/ELN analogue).

ELN models "electrical networks through the instantiation of predefined
primitives ... The SystemC-AMS internal solver analyses the ELN components to
derive the equations describing system behavior, that are solved to determine
system state at any simulation time" (paper Section II.A).

:class:`ElnModel` plays that role here: it is built from the same primitive
vocabulary (resistors, capacitors, inductors, sources, controlled sources),
assembles the network equations once (through the shared MNA machinery) and
then solves them at every timestep while the simulation advances.  It is the
conservative — hence slower but more accurate — counterpart of the abstracted
signal-flow models.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from ..errors import SimulationError
from ..network.circuit import Circuit
from ..network.mna import TRAPEZOIDAL, MnaSystem
from .trace import Trace, TraceSet


class ElnModel:
    """A conservative network solved step by step at a fixed timestep.

    Parameters
    ----------
    circuit:
        The electrical network (built programmatically or via the Verilog-AMS
        frontend).  Input stimuli are the circuit's source input signals.
    timestep:
        Solver timestep.
    method:
        Companion-model integration scheme; ELN uses trapezoidal integration
        by default, which is why its accuracy is better than the abstracted
        backward-Euler models (paper Table I error column).
    """

    def __init__(
        self,
        circuit: Circuit,
        timestep: float,
        method: str = TRAPEZOIDAL,
    ) -> None:
        self.circuit = circuit
        self.timestep = float(timestep)
        self.system = MnaSystem(circuit, timestep, method=method)
        self.inputs = list(self.system.index.inputs)
        self._state = np.zeros(self.system.size)
        self._input_vector = np.zeros(len(self.inputs))
        self._input_index = {name: i for i, name in enumerate(self.inputs)}
        self.time = 0.0
        self.step_count = 0

    # -- stepping ---------------------------------------------------------------------
    def reset(self) -> None:
        """Return to the initial state (all quantities zero)."""
        self._state = np.zeros(self.system.size)
        self.time = 0.0
        self.step_count = 0

    def set_input(self, name: str, value: float) -> None:
        """Set the value of one stimulus for the next step."""
        try:
            self._input_vector[self._input_index[name]] = value
        except KeyError as exc:
            raise SimulationError(
                f"unknown ELN input {name!r}; available: {self.inputs}"
            ) from exc

    def step(self, inputs: Mapping[str, float] | None = None) -> None:
        """Advance the network solution by one timestep."""
        if inputs is not None:
            for name, value in inputs.items():
                self.set_input(name, value)
        self._state = self.system.step(self._state, self._input_vector)
        self.time += self.timestep
        self.step_count += 1

    # -- observation ---------------------------------------------------------------------
    def value(self, quantity: str) -> float:
        """Return the current value of a node potential or branch current."""
        return float(self._state[self.system.index.unknown(quantity)])

    def node_voltage(self, node: str) -> float:
        """Return the potential of ``node`` (0 for the ground node)."""
        if node == self.circuit.ground:
            return 0.0
        return self.value(f"V({node})")

    def quantities(self) -> list[str]:
        """Every solvable quantity name."""
        return list(self.system.index.unknowns)

    # -- standalone run -------------------------------------------------------------------
    def run(
        self,
        stimuli: Mapping[str, Callable[[float], float]],
        duration: float,
        record: list[str] | None = None,
    ) -> TraceSet:
        """Run standalone for ``duration`` seconds, recording selected quantities."""
        record = record or list(self.system.index.unknowns)
        traces = TraceSet({name: Trace(name) for name in record})
        steps = int(round(duration / self.timestep))
        for _ in range(steps):
            time = self.time + self.timestep
            self.step({name: stimulus(time) for name, stimulus in stimuli.items()})
            for name in record:
                traces[name].append(self.time, self.value(name))
        return traces
