"""Simulation substrates: DE kernel, TDF kernel, ELN solver, reference AMS engine."""

from .ams import ReferenceAmsSimulator
from .cosim import AnalogCosimServer, CoSimulationBridge
from .de import Clock, Event, Kernel, Module, PeriodicTicker, Signal
from .eln import ElnModel
from .integration import (
    DeProbeModule,
    DeSignalFlowModule,
    DeSourceModule,
    DeToTdfSignal,
    ElnDeModule,
    TdfDeBridge,
    TdfProbeModule,
    TdfSignalFlowModule,
    TdfSourceModule,
    TdfToDeSignal,
)
from .runners import (
    resolve_steps,
    run_de_model,
    run_eln_model,
    run_interpreted_model,
    run_python_model,
    run_reference_model,
    run_tdf_model,
)
from .sources import (
    PAPER_SQUARE_WAVE,
    ConstantSource,
    PiecewiseLinear,
    SineWave,
    SquareWave,
    StepSource,
)
from .tdf import TdfCluster, TdfInPort, TdfModule, TdfOutPort, TdfSignal
from .trace import Trace, TraceSet

__all__ = [
    "AnalogCosimServer",
    "Clock",
    "CoSimulationBridge",
    "ConstantSource",
    "DeProbeModule",
    "DeSignalFlowModule",
    "DeSourceModule",
    "DeToTdfSignal",
    "ElnDeModule",
    "ElnModel",
    "Event",
    "Kernel",
    "Module",
    "PAPER_SQUARE_WAVE",
    "PeriodicTicker",
    "PiecewiseLinear",
    "ReferenceAmsSimulator",
    "Signal",
    "SineWave",
    "SquareWave",
    "StepSource",
    "TdfCluster",
    "TdfDeBridge",
    "TdfInPort",
    "TdfModule",
    "TdfOutPort",
    "TdfProbeModule",
    "TdfSignal",
    "TdfSignalFlowModule",
    "TdfSourceModule",
    "TdfToDeSignal",
    "Trace",
    "TraceSet",
    "run_de_model",
    "run_eln_model",
    "run_interpreted_model",
    "resolve_steps",
    "run_python_model",
    "run_reference_model",
    "run_tdf_model",
]
