"""Standalone runners: one function per simulation target of Tables I and II.

Each runner simulates one analog component in isolation, stimulated by the
same waveform (as callables — the generator is degenerate enough that keeping
it in the component's MoC only matters for the wrappers, which these runners
use), and returns the recorded output waveforms.  The benchmark harness and
the examples build on these.
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..core.signalflow import SignalFlowModel
from ..core.codegen.python_backend import compile_model_cached
from ..errors import SimulationError
from ..network.circuit import Circuit
from .ams import ReferenceAmsSimulator
from .de import Kernel
from .eln import ElnModel
from .integration import (
    DeProbeModule,
    DeSignalFlowModule,
    DeSourceModule,
    TdfProbeModule,
    TdfSignalFlowModule,
    TdfSourceModule,
)
from .tdf import TdfCluster
from .trace import Trace, TraceSet

Stimuli = Mapping[str, Callable[[float], float]]

#: Relative slack allowed between ``duration / timestep`` and the nearest
#: integer.  A duration built as ``n * dt`` carries only a few ulps of error
#: (~1e-16 relative), so 1e-12 of the ratio accepts every legitimate float
#: rounding while still flagging a half-step drop up to ~5e11 steps; the
#: 1e-9 floor keeps short runs equally tolerant.
STEP_COUNT_TOLERANCE = 1e-12
STEP_COUNT_TOLERANCE_FLOOR = 1e-9


def resolve_steps(duration: float, timestep: float) -> int:
    """Number of fixed steps covering ``duration``, validating divisibility.

    Fixed-timestep runners used to compute ``int(round(duration / dt))``,
    which silently swallowed fractional durations (``duration=2.5*dt`` ran
    two steps, simulating less time than asked).  This helper raises a
    :class:`SimulationError` instead, unless ``duration`` is an integer
    multiple of ``timestep`` within :data:`STEP_COUNT_TOLERANCE`.
    """
    if timestep <= 0.0:
        raise SimulationError(f"timestep must be positive, got {timestep!r}")
    ratio = duration / timestep
    steps = int(round(ratio))
    if steps <= 0:
        raise SimulationError(
            f"duration {duration!r} is shorter than one timestep {timestep!r}"
        )
    slack = max(STEP_COUNT_TOLERANCE_FLOOR, STEP_COUNT_TOLERANCE * abs(ratio))
    if abs(ratio - steps) > slack:
        raise SimulationError(
            f"duration {duration!r} is not an integer multiple of the "
            f"timestep {timestep!r} (duration/timestep = {ratio!r}); pick a "
            f"duration of n * timestep so no simulated time is silently "
            f"dropped"
        )
    return steps


def run_python_model(
    model: "SignalFlowModel | object",
    stimuli: Stimuli,
    duration: float,
    timestep: float | None = None,
) -> TraceSet:
    """Run the generated plain-Python model (the paper's C++ target) directly."""
    instance = _instantiate(model)
    dt = float(timestep if timestep is not None else instance.TIMESTEP)
    input_names = list(instance.INPUTS)
    output_names = list(instance.OUTPUTS)
    waveforms = [stimuli[name] for name in input_names]
    traces = TraceSet({name: Trace(name) for name in output_names})
    steps = resolve_steps(duration, dt)
    single_output = len(output_names) == 1
    step = instance.step
    for index in range(steps):
        time = (index + 1) * dt
        result = step(*[waveform(time) for waveform in waveforms], time)
        if single_output:
            traces[output_names[0]].append(time, result)
        else:
            for name, value in zip(output_names, result):
                traces[name].append(time, value)
    return traces


def run_de_model(
    model: "SignalFlowModel | object",
    stimuli: Stimuli,
    duration: float,
) -> TraceSet:
    """Run the generated model inside the discrete-event kernel (SystemC-DE row)."""
    instance = _instantiate(model)
    dt = float(instance.TIMESTEP)
    resolve_steps(duration, dt)
    kernel = Kernel()
    sources = {
        name: DeSourceModule(kernel, f"src_{name}", stimuli[name], dt)
        for name in instance.INPUTS
    }
    device = DeSignalFlowModule(
        kernel,
        "dut",
        instance,
        {name: source.out for name, source in sources.items()},
    )
    probes = {
        name: DeProbeModule(kernel, name, device.output(name), dt)
        for name in instance.OUTPUTS
    }
    kernel.run(duration)
    return TraceSet({name: probe.trace for name, probe in probes.items()})


def run_tdf_model(
    model: "SignalFlowModel | object",
    stimuli: Stimuli,
    duration: float,
) -> TraceSet:
    """Run the generated model inside the TDF kernel (SystemC-AMS/TDF row)."""
    instance = _instantiate(model)
    dt = float(instance.TIMESTEP)
    resolve_steps(duration, dt)
    cluster = TdfCluster("isolation")
    device = cluster.add(TdfSignalFlowModule("dut", instance))
    probes: dict[str, TdfProbeModule] = {}
    for name in instance.INPUTS:
        source = cluster.add(TdfSourceModule(f"src_{name}", stimuli[name], dt))
        cluster.connect(source.out, device.inputs[name])
    for name in instance.OUTPUTS:
        probe = cluster.add(TdfProbeModule(name))
        cluster.connect(device.outputs[name], probe.inp)
        probes[name] = probe
    cluster.run(duration)
    return TraceSet({name: probe.trace for name, probe in probes.items()})


def run_eln_model(
    circuit: Circuit,
    stimuli: Stimuli,
    duration: float,
    timestep: float,
    record: list[str],
) -> TraceSet:
    """Run the conservative ELN solver standalone (SystemC-AMS/ELN row)."""
    resolve_steps(duration, timestep)
    model = ElnModel(circuit, timestep)
    return model.run(stimuli, duration, record)


def run_reference_model(
    circuit: "Circuit | str",
    stimuli: Stimuli,
    duration: float,
    timestep: float,
    record: list[str],
    oversampling: int = 2,
    solver_iterations: int = 2,
) -> TraceSet:
    """Run the reference Verilog-AMS engine standalone (the golden baseline)."""
    resolve_steps(duration, timestep)
    simulator = ReferenceAmsSimulator(
        circuit,
        timestep,
        oversampling=oversampling,
        solver_iterations=solver_iterations,
    )
    return simulator.run(stimuli, duration, record)


def run_interpreted_model(
    model: SignalFlowModel,
    stimuli: Stimuli,
    duration: float,
) -> TraceSet:
    """Run the signal-flow model through its interpreted ``step`` (for checks)."""
    resolve_steps(duration, float(model.timestep))
    trace = model.run(stimuli, duration)
    traces = TraceSet()
    for name in model.outputs:
        recorded = traces.add(name)
        for time, value in zip(trace.times, trace.waveform(name)):
            recorded.append(float(time), float(value))
    return traces


def _instantiate(model: "SignalFlowModel | object"):
    """Accept a SignalFlowModel (compiled through the cache), a class or an instance."""
    if isinstance(model, SignalFlowModel):
        return compile_model_cached(model)()
    if isinstance(model, type):
        return model()
    return model
