"""Standalone runners: one function per simulation target of Tables I and II.

Each runner simulates one analog component in isolation, stimulated by the
same waveform (as callables — the generator is degenerate enough that keeping
it in the component's MoC only matters for the wrappers, which these runners
use), and returns the recorded output waveforms.  The benchmark harness and
the examples build on these.
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..core.signalflow import SignalFlowModel
from ..core.codegen.python_backend import compile_model_cached
from ..network.circuit import Circuit
from .ams import ReferenceAmsSimulator
from .de import Kernel
from .eln import ElnModel
from .integration import (
    DeProbeModule,
    DeSignalFlowModule,
    DeSourceModule,
    TdfProbeModule,
    TdfSignalFlowModule,
    TdfSourceModule,
)
from .tdf import TdfCluster
from .trace import Trace, TraceSet

Stimuli = Mapping[str, Callable[[float], float]]


def run_python_model(
    model: "SignalFlowModel | object",
    stimuli: Stimuli,
    duration: float,
    timestep: float | None = None,
) -> TraceSet:
    """Run the generated plain-Python model (the paper's C++ target) directly."""
    instance = _instantiate(model)
    dt = float(timestep if timestep is not None else instance.TIMESTEP)
    input_names = list(instance.INPUTS)
    output_names = list(instance.OUTPUTS)
    waveforms = [stimuli[name] for name in input_names]
    traces = TraceSet({name: Trace(name) for name in output_names})
    steps = int(round(duration / dt))
    single_output = len(output_names) == 1
    step = instance.step
    for index in range(steps):
        time = (index + 1) * dt
        result = step(*[waveform(time) for waveform in waveforms], time)
        if single_output:
            traces[output_names[0]].append(time, result)
        else:
            for name, value in zip(output_names, result):
                traces[name].append(time, value)
    return traces


def run_de_model(
    model: "SignalFlowModel | object",
    stimuli: Stimuli,
    duration: float,
) -> TraceSet:
    """Run the generated model inside the discrete-event kernel (SystemC-DE row)."""
    instance = _instantiate(model)
    dt = float(instance.TIMESTEP)
    kernel = Kernel()
    sources = {
        name: DeSourceModule(kernel, f"src_{name}", stimuli[name], dt)
        for name in instance.INPUTS
    }
    device = DeSignalFlowModule(
        kernel,
        "dut",
        instance,
        {name: source.out for name, source in sources.items()},
    )
    probes = {
        name: DeProbeModule(kernel, name, device.output(name), dt)
        for name in instance.OUTPUTS
    }
    kernel.run(duration)
    return TraceSet({name: probe.trace for name, probe in probes.items()})


def run_tdf_model(
    model: "SignalFlowModel | object",
    stimuli: Stimuli,
    duration: float,
) -> TraceSet:
    """Run the generated model inside the TDF kernel (SystemC-AMS/TDF row)."""
    instance = _instantiate(model)
    dt = float(instance.TIMESTEP)
    cluster = TdfCluster("isolation")
    device = cluster.add(TdfSignalFlowModule("dut", instance))
    probes: dict[str, TdfProbeModule] = {}
    for name in instance.INPUTS:
        source = cluster.add(TdfSourceModule(f"src_{name}", stimuli[name], dt))
        cluster.connect(source.out, device.inputs[name])
    for name in instance.OUTPUTS:
        probe = cluster.add(TdfProbeModule(name))
        cluster.connect(device.outputs[name], probe.inp)
        probes[name] = probe
    cluster.run(duration)
    return TraceSet({name: probe.trace for name, probe in probes.items()})


def run_eln_model(
    circuit: Circuit,
    stimuli: Stimuli,
    duration: float,
    timestep: float,
    record: list[str],
) -> TraceSet:
    """Run the conservative ELN solver standalone (SystemC-AMS/ELN row)."""
    model = ElnModel(circuit, timestep)
    return model.run(stimuli, duration, record)


def run_reference_model(
    circuit: "Circuit | str",
    stimuli: Stimuli,
    duration: float,
    timestep: float,
    record: list[str],
    oversampling: int = 2,
    solver_iterations: int = 2,
) -> TraceSet:
    """Run the reference Verilog-AMS engine standalone (the golden baseline)."""
    simulator = ReferenceAmsSimulator(
        circuit,
        timestep,
        oversampling=oversampling,
        solver_iterations=solver_iterations,
    )
    return simulator.run(stimuli, duration, record)


def run_interpreted_model(
    model: SignalFlowModel,
    stimuli: Stimuli,
    duration: float,
) -> TraceSet:
    """Run the signal-flow model through its interpreted ``step`` (for checks)."""
    trace = model.run(stimuli, duration)
    traces = TraceSet()
    for name in model.outputs:
        recorded = traces.add(name)
        for time, value in zip(trace.times, trace.waveform(name)):
            recorded.append(float(time), float(value))
    return traces


def _instantiate(model: "SignalFlowModel | object"):
    """Accept a SignalFlowModel (compiled through the cache), a class or an instance."""
    if isinstance(model, SignalFlowModel):
        return compile_model_cached(model)()
    if isinstance(model, type):
        return model()
    return model
