"""Stimulus sources, available as plain callables and as modules in every MoC.

The paper stimulates every model with "a square wave signal generator which is
modeled by using the same MoC of the component under test to avoid performance
artifacts due to inter-MoCs interfaces" (Section V.A).  The callables defined
here are the waveform definitions; :mod:`repro.sim.integration` wraps them as
discrete-event and TDF modules so that each experiment keeps the generator in
the same model of computation as the device under test.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class SquareWave:
    """A square wave: ``high`` for the first ``duty`` fraction of each period."""

    amplitude: float = 1.0
    period: float = 1e-3
    duty: float = 0.5
    offset: float = 0.0
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.period <= 0.0:
            raise ValueError("period must be positive")
        if not 0.0 < self.duty < 1.0:
            raise ValueError("duty cycle must be within (0, 1)")

    def __call__(self, time: float) -> float:
        if time < self.delay:
            return self.offset
        phase = (time - self.delay) % self.period
        return self.offset + (self.amplitude if phase < self.duty * self.period else 0.0)


@dataclass(frozen=True)
class SineWave:
    """A sine wave ``offset + amplitude * sin(2*pi*frequency*t + phase)``."""

    amplitude: float = 1.0
    frequency: float = 1e3
    phase: float = 0.0
    offset: float = 0.0

    def __call__(self, time: float) -> float:
        return self.offset + self.amplitude * math.sin(
            2.0 * math.pi * self.frequency * time + self.phase
        )


@dataclass(frozen=True)
class StepSource:
    """A step from ``initial`` to ``final`` at ``step_time``."""

    initial: float = 0.0
    final: float = 1.0
    step_time: float = 0.0

    def __call__(self, time: float) -> float:
        return self.final if time >= self.step_time else self.initial


@dataclass(frozen=True)
class ConstantSource:
    """A constant stimulus."""

    value: float = 0.0

    def __call__(self, time: float) -> float:
        return self.value


class PiecewiseLinear:
    """A piecewise-linear stimulus defined by ``(time, value)`` breakpoints."""

    def __init__(self, points: list[tuple[float, float]]) -> None:
        if not points:
            raise ValueError("at least one breakpoint is required")
        self.points = sorted(points)

    def __call__(self, time: float) -> float:
        points = self.points
        if time <= points[0][0]:
            return points[0][1]
        if time >= points[-1][0]:
            return points[-1][1]
        for (t0, v0), (t1, v1) in zip(points, points[1:]):
            if t0 <= time <= t1:
                if t1 == t0:
                    return v1
                fraction = (time - t0) / (t1 - t0)
                return v0 + fraction * (v1 - v0)
        return points[-1][1]


#: The stimulus used throughout the paper's experiments: a 1 V square wave
#: with a 1 ms period.
PAPER_SQUARE_WAVE = SquareWave(amplitude=1.0, period=1e-3, duty=0.5)
