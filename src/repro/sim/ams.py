"""Reference AMS transient engine (the Verilog-AMS / ELDO analogue).

The paper's baseline is the simulation of the original Verilog-AMS
description with a SPICE-class solver: "the sparse linear solver and device
evaluation are two most serious bottlenecks in this kind of simulators"
(Section III.B).  :class:`ReferenceAmsSimulator` reproduces that structure:

* it is built directly from the conservative description (Verilog-AMS source,
  a parsed module or a circuit netlist);
* every solver iteration re-evaluates all device stamps ("device
  evaluation") and factorises/solves the full system from scratch — nothing
  is cached across steps;
* it integrates with the trapezoidal rule on an internal timestep finer than
  the platform timestep (``oversampling``), so its waveforms are the most
  accurate of every engine and serve as the golden reference for the NRMSE
  columns of Tables I and III.

It is intentionally the slowest engine; the abstraction methodology's speedups
are measured against it.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from ..errors import SimulationError
from ..network.circuit import Circuit
from ..network.mna import TRAPEZOIDAL, MnaSystem
from ..vams.ast import VamsModule
from ..vams.netlist import to_circuit
from ..vams.parser import parse_module
from .trace import Trace, TraceSet


def _coerce_circuit(model: "Circuit | VamsModule | str") -> Circuit:
    if isinstance(model, Circuit):
        return model
    if isinstance(model, VamsModule):
        return to_circuit(model)
    if isinstance(model, str):
        return to_circuit(parse_module(model))
    raise SimulationError(
        f"cannot build a reference simulation from {type(model).__name__}"
    )


class ReferenceAmsSimulator:
    """Full conservative transient simulation of a Verilog-AMS description.

    Parameters
    ----------
    model:
        Verilog-AMS source text, a parsed module, or a circuit netlist.
    timestep:
        The *external* synchronisation timestep (the platform timestep).
    oversampling:
        Number of internal integration steps per external step; the internal
        timestep is ``timestep / oversampling``.
    solver_iterations:
        Number of evaluate/solve iterations per internal step, emulating the
        Newton iterations a SPICE engine runs even on linear circuits.
    """

    def __init__(
        self,
        model: "Circuit | VamsModule | str",
        timestep: float,
        oversampling: int = 2,
        solver_iterations: int = 2,
        method: str = TRAPEZOIDAL,
    ) -> None:
        if oversampling < 1:
            raise ValueError("oversampling must be at least 1")
        if solver_iterations < 1:
            raise ValueError("solver_iterations must be at least 1")
        self.circuit = _coerce_circuit(model)
        self.external_timestep = float(timestep)
        self.oversampling = int(oversampling)
        self.solver_iterations = int(solver_iterations)
        self.internal_timestep = self.external_timestep / self.oversampling
        self.system = MnaSystem(self.circuit, self.internal_timestep, method=method)
        self.inputs = list(self.system.index.inputs)
        self._input_index = {name: index for index, name in enumerate(self.inputs)}
        self._input_vector = np.zeros(len(self.inputs))
        self._state = np.zeros(self.system.size)
        self.time = 0.0
        self.step_count = 0
        self.solve_count = 0

    # -- stepping -----------------------------------------------------------------------
    def reset(self) -> None:
        """Return to the all-zero initial condition."""
        self._state = np.zeros(self.system.size)
        self.time = 0.0
        self.step_count = 0
        self.solve_count = 0

    def set_input(self, name: str, value: float) -> None:
        """Set the value of one stimulus for the next step."""
        try:
            self._input_vector[self._input_index[name]] = value
        except KeyError as exc:
            raise SimulationError(
                f"unknown stimulus {name!r}; available: {self.inputs}"
            ) from exc

    def step(self, inputs: Mapping[str, float] | None = None) -> None:
        """Advance by one *external* timestep (running the internal sub-steps)."""
        if inputs is not None:
            for name, value in inputs.items():
                self.set_input(name, value)
        for _ in range(self.oversampling):
            self._solve_internal_step()
        self.time += self.external_timestep
        self.step_count += 1

    def _solve_internal_step(self) -> None:
        state = self._state
        for _ in range(self.solver_iterations):
            # Device evaluation: rebuild every stamp from the netlist.
            self.system.restamp()
            rhs = self.system.B @ state + self.system.S @ self._input_vector + self.system.s0
            # Matrix solution: factorise and solve from scratch (no caching).
            try:
                solution = np.linalg.solve(self.system.A, rhs)
            except np.linalg.LinAlgError as exc:
                raise SimulationError(
                    f"the reference engine hit a singular matrix in circuit "
                    f"{self.circuit.name!r}"
                ) from exc
            self.solve_count += 1
        self._state = solution

    # -- observation -----------------------------------------------------------------------
    def value(self, quantity: str) -> float:
        """Return the current value of a node potential or branch current."""
        return float(self._state[self.system.index.unknown(quantity)])

    def node_voltage(self, node: str) -> float:
        """Return the potential of ``node`` (0 for ground)."""
        if node == self.circuit.ground:
            return 0.0
        return self.value(f"V({node})")

    def quantities(self) -> list[str]:
        """Every solvable quantity."""
        return list(self.system.index.unknowns)

    # -- standalone run --------------------------------------------------------------------
    def run(
        self,
        stimuli: Mapping[str, Callable[[float], float]],
        duration: float,
        record: list[str] | None = None,
    ) -> TraceSet:
        """Run a transient analysis and record selected quantities."""
        record = record or list(self.system.index.unknowns)
        traces = TraceSet({name: Trace(name) for name in record})
        steps = int(round(duration / self.external_timestep))
        for _ in range(steps):
            time = self.time + self.external_timestep
            self.step({name: stimulus(time) for name, stimulus in stimuli.items()})
            for name in record:
                traces[name].append(self.time, self.value(name))
        return traces
