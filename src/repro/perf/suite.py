"""The standard benchmark workloads behind ``benchmarks/record.py``.

Each ``bench_*`` function runs one workload and returns a
:class:`~repro.perf.baseline.BenchmarkRecord`.  The workloads are shared by
the recording CLI and the micro-benchmark tests so that "the tentpole's
speedup is measured, not asserted" — the same code path produces both the
JSON baselines and the pass/fail numbers.

``smoke=True`` shrinks every workload to CI size (a second or two in total)
without changing what is measured.
"""

from __future__ import annotations

from typing import Callable

from ..sim.de import Kernel, PeriodicTicker
from ..vp import Memory, MipsCpu, assemble
from ..vp.platform import _CpuBlockDriver
from .baseline import BenchmarkRecord, best_of

#: The platform's nominal CPU clock period (20 MHz), used by the ISS bench.
CPU_PERIOD = 50e-9

#: A firmware-style compute/memory/branch loop: the instruction mix of the
#: threshold-monitor firmware (ALU ops, a RAM store + load, a backward
#: branch) without the peripheral polling, so it measures the ISS itself.
FIRMWARE_STYLE_LOOP = """
        li    $t0, 0
        li    $t1, 0x2000
        li    $t3, 0
loop:   addiu $t0, $t0, 1
        andi  $t2, $t0, 0xFF
        sll   $t4, $t2, 2
        addu  $t5, $t4, $t2
        sw    $t5, 0($t1)
        lw    $t6, 0($t1)
        subu  $t7, $t6, $t2
        bne   $t0, $t3, loop
"""


#: Burst size at which the superblock tier amortises its dispatch overhead
#: (the per-burst entry cost is fixed, so longer bursts spend a larger
#: fraction of their time inside the fused loop bodies).
SUPERBLOCK_CYCLES = 1024


def make_firmware_loop_cpu(superblocks: bool = False) -> MipsCpu:
    """A CPU loaded with :data:`FIRMWARE_STYLE_LOOP` (no peripherals)."""
    memory = Memory(size=64 * 1024)
    memory.load_image(assemble(FIRMWARE_STYLE_LOOP).to_bytes())
    return MipsCpu(memory, superblocks=superblocks)


def iss_throughput(
    instructions: int,
    stepper: "str" = "block",
    block_cycles: int = 256,
) -> float:
    """Instructions/second of the ISS on the firmware-style loop.

    ``stepper`` selects the execution model:

    * ``"step"`` — one ``cpu.step()`` call per instruction (the bare
      interpreter, no kernel);
    * ``"tick"`` — one instruction per DE-kernel event (the historical
      per-tick platform integration);
    * ``"block"`` — ``block_cycles``-instruction bursts per DE-kernel event
      (the block-stepped integration, superblock compilation off);
    * ``"superblock"`` — the same bursts with the superblock compiler fusing
      hot basic-block runs into specialized Python callables.
    """
    if stepper == "step":
        cpu = make_firmware_loop_cpu()

        def run() -> None:
            cpu.reset()
            step = cpu.step
            for _ in range(instructions):
                step()

        return instructions / best_of(run)
    if stepper in ("tick", "block", "superblock"):
        cycles = 1 if stepper == "tick" else block_cycles
        superblocks = stepper == "superblock"
        duration = instructions * CPU_PERIOD

        def run() -> None:
            cpu = make_firmware_loop_cpu(superblocks=superblocks)
            kernel = Kernel()
            _CpuBlockDriver(kernel, "cpu.clock", cpu, CPU_PERIOD, cycles)
            kernel.run(duration)
            assert cpu.instruction_count == instructions, cpu.instruction_count

        return instructions / best_of(run)
    raise ValueError(f"unknown stepper {stepper!r}")


def bench_iss(smoke: bool = False) -> BenchmarkRecord:
    """ISS throughput: bare interpreter vs per-tick vs block-stepped.

    ``block_speedup`` (block-stepped vs the one-instruction-per-tick
    integration) is the tentpole's acceptance metric: the same firmware, the
    same kernel, the same retired instruction count — only the stepping
    granularity differs.
    """
    instructions = 60_000 if smoke else 400_000
    step_rate = iss_throughput(instructions, "step")
    tick_rate = iss_throughput(instructions, "tick")
    block_rate = iss_throughput(instructions, "block")
    # The superblock tier is compared against block stepping *at the same
    # burst size* so the ratio isolates the compiler, not the burst length.
    # Each timed run starts from a fresh CPU and therefore pays the heat
    # tracking and compile once; the workload is larger so the steady state
    # dominates the ratio the way it dominates real campaigns.
    sb_instructions = 4 * instructions
    block_long_rate = iss_throughput(sb_instructions, "block", SUPERBLOCK_CYCLES)
    superblock_rate = iss_throughput(
        sb_instructions, "superblock", SUPERBLOCK_CYCLES
    )
    return BenchmarkRecord(
        name="iss",
        metrics={
            "step_instructions_per_second": step_rate,
            "tick_instructions_per_second": tick_rate,
            "block_instructions_per_second": block_rate,
            "superblock_instructions_per_second": superblock_rate,
            "block_speedup_vs_tick": block_rate / tick_rate,
            "block_speedup_vs_step": block_rate / step_rate,
            "superblock_speedup_vs_block": superblock_rate / block_long_rate,
        },
        maximize=(
            "step_instructions_per_second",
            "tick_instructions_per_second",
            "block_instructions_per_second",
            "superblock_instructions_per_second",
            "block_speedup_vs_tick",
            "block_speedup_vs_step",
            "superblock_speedup_vs_block",
        ),
        meta={**BenchmarkRecord.environment_meta(), "instructions": instructions,
              "superblock_instructions": sb_instructions,
              "superblock_cycles": SUPERBLOCK_CYCLES, "smoke": smoke},
    )


def bench_de_kernel(smoke: bool = False) -> BenchmarkRecord:
    """Raw event throughput of the discrete-event kernel (periodic ticker)."""
    events = 20_000 if smoke else 200_000
    period = CPU_PERIOD

    def run() -> None:
        kernel = Kernel()
        ticks = [0]

        def tick(now: float) -> None:
            ticks[0] += 1

        PeriodicTicker(kernel, "tick", period, tick)
        kernel.run(events * period)
        assert ticks[0] == events

    rate = events / best_of(run)
    return BenchmarkRecord(
        name="de_kernel",
        metrics={"events_per_second": rate},
        maximize=("events_per_second",),
        meta={**BenchmarkRecord.environment_meta(), "events": events, "smoke": smoke},
    )


def bench_platform(smoke: bool = False) -> BenchmarkRecord:
    """A firmware-bound smart-system run (python-style analog integration)."""
    from ..circuits import build_rc_filter
    from ..core import abstract_circuit
    from ..sim import SquareWave
    from ..vp import SmartSystemPlatform, threshold_monitor_source

    timestep = 50e-9
    duration = 200e-6 if smoke else 2e-3
    model = abstract_circuit(build_rc_filter(1), "out", timestep)

    def run() -> "float":
        platform = SmartSystemPlatform(
            firmware=threshold_monitor_source(100), analog_timestep=timestep
        )
        platform.attach_analog_python(model, {"vin": SquareWave(period=40e-6)})
        result = platform.run(duration)
        return result.instructions

    instructions = run()
    wall = best_of(run)

    # Firmware-bound configuration: the CPU spins in the RAM-only
    # firmware-style loop (no peripheral polling) and the analog subsystem
    # ticks at a realistic sensor rate (10 us, not one event per CPU cycle),
    # so the run measures the execution tier itself inside the full platform
    # — this is where the superblock compiler's >=5x target is checked.
    firmware_duration = 50e-3 if smoke else 200e-3
    firmware_timestep = 10e-6
    firmware_model = abstract_circuit(build_rc_filter(1), "out", firmware_timestep)

    def firmware_run(superblocks: bool) -> "tuple[int, float]":
        def run_once() -> int:
            platform = SmartSystemPlatform(
                firmware=FIRMWARE_STYLE_LOOP,
                analog_timestep=firmware_timestep,
                cpu_block_cycles=SUPERBLOCK_CYCLES,
                cpu_superblocks=superblocks,
            )
            platform.attach_analog_python(
                firmware_model, {"vin": SquareWave(period=40e-6)}
            )
            return platform.run(firmware_duration).instructions

        return run_once(), best_of(run_once)

    firmware_instructions, block_wall = firmware_run(False)
    superblock_instructions, superblock_wall = firmware_run(True)
    assert firmware_instructions == superblock_instructions, (
        firmware_instructions,
        superblock_instructions,
    )
    firmware_block_rate = firmware_instructions / block_wall
    firmware_superblock_rate = firmware_instructions / superblock_wall
    return BenchmarkRecord(
        name="platform",
        # Only the rate is a metric: wall seconds scale with the workload
        # size, which would falsely flag smoke-vs-full comparisons.
        metrics={
            "instructions_per_second": instructions / wall,
            "firmware_block_instructions_per_second": firmware_block_rate,
            "firmware_superblock_instructions_per_second": firmware_superblock_rate,
            "firmware_superblock_speedup": (
                firmware_superblock_rate / firmware_block_rate
            ),
        },
        maximize=(
            "instructions_per_second",
            "firmware_block_instructions_per_second",
            "firmware_superblock_instructions_per_second",
            "firmware_superblock_speedup",
        ),
        meta={
            **BenchmarkRecord.environment_meta(),
            "duration": duration,
            "instructions": instructions,
            "wall_seconds": wall,
            "firmware_duration": firmware_duration,
            "firmware_instructions": firmware_instructions,
            "superblock_cycles": SUPERBLOCK_CYCLES,
            "smoke": smoke,
        },
    )


def bench_analog_batch(smoke: bool = False) -> BenchmarkRecord:
    """Batch ``step_batch`` throughput: compiled C kernel vs vectorized NumPy.

    The analog tentpole's acceptance metric is ``native_speedup_vs_numpy``
    (>= 2x on batch workloads).  When the machine has no C toolchain the
    record carries the NumPy number alone and names the missing dependency
    in ``meta`` — comparisons simply skip the absent metrics.
    """
    from ..circuits import build_rc_filter
    from ..core import abstract_circuit
    from ..core.codegen import NativeGenerator, NumpyGenerator, toolchain_error

    timestep = 50e-9
    order = 8 if smoke else 20
    scenarios = 64 if smoke else 256
    steps = 500 if smoke else 2000
    model = abstract_circuit(build_rc_filter(order), "out", timestep)
    models = [model] * scenarios

    def batch_rate(instance) -> float:
        import numpy as np

        drive = np.linspace(0.0, 1.0, scenarios)
        step_batch = instance.step_batch

        def run() -> None:
            instance.reset()
            for index in range(steps):
                step_batch(drive, (index + 1) * timestep)

        return (steps * scenarios) / best_of(run)

    numpy_rate = batch_rate(NumpyGenerator().generate_batch(models).instantiate())
    metrics = {"numpy_steps_per_second": numpy_rate}
    maximize = ["numpy_steps_per_second"]
    meta = {
        **BenchmarkRecord.environment_meta(),
        "order": order,
        "scenarios": scenarios,
        "steps": steps,
        "smoke": smoke,
    }
    missing = toolchain_error()
    if missing is None:
        native_rate = batch_rate(
            NativeGenerator().generate_batch(models).instantiate()
        )
        metrics["native_steps_per_second"] = native_rate
        metrics["native_speedup_vs_numpy"] = native_rate / numpy_rate
        maximize += ["native_steps_per_second", "native_speedup_vs_numpy"]
    else:
        meta["native_unavailable"] = missing
    return BenchmarkRecord(
        name="analog_batch",
        metrics=metrics,
        maximize=tuple(maximize),
        meta=meta,
    )


#: Every standard benchmark, in report order.
SUITE: tuple[Callable[[bool], BenchmarkRecord], ...] = (
    bench_iss,
    bench_de_kernel,
    bench_platform,
    bench_analog_batch,
)


def run_suite(smoke: bool = False) -> list[BenchmarkRecord]:
    """Run every standard benchmark and return the fresh records."""
    return [bench(smoke) for bench in SUITE]
