"""The standard benchmark workloads behind ``benchmarks/record.py``.

Each ``bench_*`` function runs one workload and returns a
:class:`~repro.perf.baseline.BenchmarkRecord`.  The workloads are shared by
the recording CLI and the micro-benchmark tests so that "the tentpole's
speedup is measured, not asserted" — the same code path produces both the
JSON baselines and the pass/fail numbers.

``smoke=True`` shrinks every workload to CI size (a second or two in total)
without changing what is measured.
"""

from __future__ import annotations

from typing import Callable

from ..sim.de import Kernel, PeriodicTicker
from ..vp import Memory, MipsCpu, assemble
from ..vp.platform import _CpuBlockDriver
from .baseline import BenchmarkRecord, best_of

#: The platform's nominal CPU clock period (20 MHz), used by the ISS bench.
CPU_PERIOD = 50e-9

#: A firmware-style compute/memory/branch loop: the instruction mix of the
#: threshold-monitor firmware (ALU ops, a RAM store + load, a backward
#: branch) without the peripheral polling, so it measures the ISS itself.
FIRMWARE_STYLE_LOOP = """
        li    $t0, 0
        li    $t1, 0x2000
        li    $t3, 0
loop:   addiu $t0, $t0, 1
        andi  $t2, $t0, 0xFF
        sll   $t4, $t2, 2
        addu  $t5, $t4, $t2
        sw    $t5, 0($t1)
        lw    $t6, 0($t1)
        subu  $t7, $t6, $t2
        bne   $t0, $t3, loop
"""


def make_firmware_loop_cpu() -> MipsCpu:
    """A CPU loaded with :data:`FIRMWARE_STYLE_LOOP` (no peripherals)."""
    memory = Memory(size=64 * 1024)
    memory.load_image(assemble(FIRMWARE_STYLE_LOOP).to_bytes())
    return MipsCpu(memory)


def iss_throughput(
    instructions: int,
    stepper: "str" = "block",
    block_cycles: int = 256,
) -> float:
    """Instructions/second of the ISS on the firmware-style loop.

    ``stepper`` selects the execution model:

    * ``"step"`` — one ``cpu.step()`` call per instruction (the bare
      interpreter, no kernel);
    * ``"tick"`` — one instruction per DE-kernel event (the historical
      per-tick platform integration);
    * ``"block"`` — ``block_cycles``-instruction bursts per DE-kernel event
      (the block-stepped integration).
    """
    if stepper == "step":
        cpu = make_firmware_loop_cpu()

        def run() -> None:
            cpu.reset()
            step = cpu.step
            for _ in range(instructions):
                step()

        return instructions / best_of(run)
    if stepper in ("tick", "block"):
        cycles = 1 if stepper == "tick" else block_cycles
        duration = instructions * CPU_PERIOD

        def run() -> None:
            cpu = make_firmware_loop_cpu()
            kernel = Kernel()
            _CpuBlockDriver(kernel, "cpu.clock", cpu, CPU_PERIOD, cycles)
            kernel.run(duration)
            assert cpu.instruction_count == instructions, cpu.instruction_count

        return instructions / best_of(run)
    raise ValueError(f"unknown stepper {stepper!r}")


def bench_iss(smoke: bool = False) -> BenchmarkRecord:
    """ISS throughput: bare interpreter vs per-tick vs block-stepped.

    ``block_speedup`` (block-stepped vs the one-instruction-per-tick
    integration) is the tentpole's acceptance metric: the same firmware, the
    same kernel, the same retired instruction count — only the stepping
    granularity differs.
    """
    instructions = 60_000 if smoke else 400_000
    step_rate = iss_throughput(instructions, "step")
    tick_rate = iss_throughput(instructions, "tick")
    block_rate = iss_throughput(instructions, "block")
    return BenchmarkRecord(
        name="iss",
        metrics={
            "step_instructions_per_second": step_rate,
            "tick_instructions_per_second": tick_rate,
            "block_instructions_per_second": block_rate,
            "block_speedup_vs_tick": block_rate / tick_rate,
            "block_speedup_vs_step": block_rate / step_rate,
        },
        maximize=(
            "step_instructions_per_second",
            "tick_instructions_per_second",
            "block_instructions_per_second",
            "block_speedup_vs_tick",
            "block_speedup_vs_step",
        ),
        meta={**BenchmarkRecord.environment_meta(), "instructions": instructions,
              "smoke": smoke},
    )


def bench_de_kernel(smoke: bool = False) -> BenchmarkRecord:
    """Raw event throughput of the discrete-event kernel (periodic ticker)."""
    events = 20_000 if smoke else 200_000
    period = CPU_PERIOD

    def run() -> None:
        kernel = Kernel()
        ticks = [0]

        def tick(now: float) -> None:
            ticks[0] += 1

        PeriodicTicker(kernel, "tick", period, tick)
        kernel.run(events * period)
        assert ticks[0] == events

    rate = events / best_of(run)
    return BenchmarkRecord(
        name="de_kernel",
        metrics={"events_per_second": rate},
        maximize=("events_per_second",),
        meta={**BenchmarkRecord.environment_meta(), "events": events, "smoke": smoke},
    )


def bench_platform(smoke: bool = False) -> BenchmarkRecord:
    """A firmware-bound smart-system run (python-style analog integration)."""
    from ..circuits import build_rc_filter
    from ..core import abstract_circuit
    from ..sim import SquareWave
    from ..vp import SmartSystemPlatform, threshold_monitor_source

    timestep = 50e-9
    duration = 200e-6 if smoke else 2e-3
    model = abstract_circuit(build_rc_filter(1), "out", timestep)

    def run() -> "float":
        platform = SmartSystemPlatform(
            firmware=threshold_monitor_source(100), analog_timestep=timestep
        )
        platform.attach_analog_python(model, {"vin": SquareWave(period=40e-6)})
        result = platform.run(duration)
        return result.instructions

    instructions = run()
    wall = best_of(run)
    return BenchmarkRecord(
        name="platform",
        # Only the rate is a metric: wall seconds scale with the workload
        # size, which would falsely flag smoke-vs-full comparisons.
        metrics={"instructions_per_second": instructions / wall},
        maximize=("instructions_per_second",),
        meta={
            **BenchmarkRecord.environment_meta(),
            "duration": duration,
            "instructions": instructions,
            "wall_seconds": wall,
            "smoke": smoke,
        },
    )


#: Every standard benchmark, in report order.
SUITE: tuple[Callable[[bool], BenchmarkRecord], ...] = (
    bench_iss,
    bench_de_kernel,
    bench_platform,
)


def run_suite(smoke: bool = False) -> list[BenchmarkRecord]:
    """Run every standard benchmark and return the fresh records."""
    return [bench(smoke) for bench in SUITE]
