"""The ``repro-bench`` entry point: record/compare performance baselines.

Runs the standard :mod:`repro.perf.suite` workloads and writes one
``BENCH_<name>.json`` per benchmark into the baseline directory.  With
``--compare`` the suite is re-run and the fresh numbers are checked against
the last recorded baselines instead of overwriting them; regressions beyond
``--tolerance`` are reported (and fail the run under ``--strict``).

Baselines are wall-clock numbers of *this* machine — record and compare on
the same host.  ``benchmarks/record.py`` is the in-repo wrapper that defaults
the baseline directory to ``benchmarks/baselines/``; the installed
``repro-bench`` script defaults to ``./perf-baselines``.

``--store DIR`` checkpoints the suite itself into a content-addressed
:class:`~repro.store.RunStore` (one record per benchmark, keyed by
benchmark × workload size × interpreter/machine identity) and ``--resume``
skips benchmarks whose record is already committed — an interrupted long
suite run finishes only the missing workloads.

``--publish`` additionally snapshots the fresh records as ``BENCH_*.json``
files in the repository root (records carry the git commit and dirty flag,
so a published snapshot names the exact tree it measured) *and* appends
each record as one JSONL line to ``benchmarks/history/<name>.jsonl`` —
the cross-commit series ``repro-report`` renders as trend lines.
``--trace``/``--telemetry`` collect :mod:`repro.obs` telemetry of the
suite run itself, and ``--report out.html`` writes a self-contained HTML
dashboard of the fresh records merged with that history.
"""

from __future__ import annotations

import argparse
import json
import platform as _platform
import subprocess
import sys
import time
from pathlib import Path

from ..obs.export import write_trace_json
from ..obs.telemetry import TelemetryReport
from ..obs.tracer import TRACER, disable_tracing, enable_tracing
from ..store import RunStore
from .baseline import BaselineStore, BenchmarkRecord, git_identity
from .suite import SUITE, run_suite

DEFAULT_BASELINE_DIR = "perf-baselines"


def repo_root() -> Path:
    """The git toplevel directory, or the current directory outside a repo.

    ``--publish`` snapshots land here so the published ``BENCH_*.json``
    files sit next to the source they measured.
    """
    try:
        completed = subprocess.run(
            ("git", "rev-parse", "--show-toplevel"),
            capture_output=True,
            text=True,
            timeout=10.0,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return Path.cwd()
    if completed.returncode != 0 or not completed.stdout.strip():
        return Path.cwd()
    return Path(completed.stdout.strip())


def _bench_store_inputs(name: str, smoke: bool) -> dict:
    """The content key of one suite benchmark: what × at what size × where.

    Wall-clock records are only meaningful on the host that produced them,
    so the interpreter and machine identity are part of the key — resuming
    on a different machine re-runs rather than reusing foreign numbers.
    """
    return {
        "engine": "perf-suite",
        "benchmark": name,
        "smoke": bool(smoke),
        "python": sys.version.split()[0],
        "implementation": _platform.python_implementation(),
        "machine": _platform.machine(),
        # The hostname, not just the architecture: a store shared between
        # two same-arch hosts must re-run, never reuse foreign wall clocks.
        "host": _platform.node(),
    }


def _run_suite_through_store(
    store: RunStore, smoke: bool, resume: bool
) -> "tuple[list[BenchmarkRecord], int]":
    """Run the suite with per-benchmark checkpoint/resume; returns
    ``(records, loaded_count)``."""
    records: list[BenchmarkRecord] = []
    loaded = 0
    for bench in SUITE:
        name = bench.__name__.removeprefix("bench_")
        inputs = _bench_store_inputs(name, smoke)
        key = store.key(inputs)
        if resume:
            committed = store.load(key)
            if committed is not None:
                records.append(BenchmarkRecord.from_json(json.dumps(committed)))
                loaded += 1
                continue
        record = bench(smoke)
        store.commit(key, json.loads(record.to_json()), inputs=inputs)
        records.append(record)
    return records, loaded


def main(argv: "list[str] | None" = None, default_out: str = DEFAULT_BASELINE_DIR) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized workloads (seconds, not minutes); measured the same way",
    )
    parser.add_argument(
        "--out",
        default=default_out,
        help=f"baseline directory (default: {default_out}/)",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="compare against the recorded baselines instead of overwriting them",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="fraction of baseline performance a metric may lose before it is "
        "flagged (default 0.30, i.e. flag below 70%% retained)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when --compare finds regressions",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="checkpoint each benchmark's record into this run store",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip benchmarks already committed to --store (load their records)",
    )
    parser.add_argument(
        "--publish",
        action="store_true",
        help="also snapshot the fresh BENCH_*.json records into the repo root "
        "(git toplevel; the current directory outside a checkout); refuses "
        "a dirty working tree so published numbers always name the exact "
        "commit they measured",
    )
    parser.add_argument(
        "--allow-dirty",
        action="store_true",
        help="let --publish proceed from a dirty working tree (the records "
        "will carry git_dirty: true and are not reproducible from the "
        "recorded commit alone)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="collect telemetry while the suite runs and write a Chrome "
        "trace_event JSON file (inspect with repro-trace or chrome://tracing)",
    )
    parser.add_argument(
        "--telemetry",
        default=None,
        metavar="FILE",
        help="write the suite telemetry as a markdown report "
        "(implies telemetry collection)",
    )
    parser.add_argument(
        "--report",
        default=None,
        metavar="FILE",
        help="write a self-contained HTML dashboard of the fresh records "
        "merged with benchmarks/history/ trend lines (see repro-report)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the per-metric detail lines and telemetry summary",
    )
    arguments = parser.parse_args(argv)
    if arguments.resume and arguments.store is None:
        parser.error("--resume needs --store to resume from")
    if arguments.publish and not arguments.allow_dirty:
        _, dirty = git_identity()
        if dirty:
            print(
                "repro-bench: refusing to --publish from a dirty working "
                "tree: the snapshot would carry git_dirty: true and could "
                "not be reproduced from the recorded commit. Commit (or "
                "stash) your changes, or pass --allow-dirty to publish "
                "anyway.",
                file=sys.stderr,
            )
            return 2
    store = BaselineStore(arguments.out)

    trace = bool(arguments.trace or arguments.telemetry)
    tracer_was_enabled = TRACER.enabled
    if trace and not tracer_was_enabled:
        enable_tracing()
    telemetry_mark = TRACER.mark() if trace else None
    suite_start = time.perf_counter()

    print(f"Running the perf suite ({'smoke' if arguments.smoke else 'full'} size)...")
    loaded = 0
    try:
        if arguments.store is not None:
            run_store = RunStore(arguments.store)
            records, loaded = _run_suite_through_store(
                run_store, arguments.smoke, arguments.resume
            )
            print(
                f"  suite store {arguments.store}: {len(records) - loaded} "
                f"benchmark(s) executed, {loaded} loaded"
            )
        else:
            records = run_suite(smoke=arguments.smoke)
    finally:
        if trace and not tracer_was_enabled:
            disable_tracing()
    if not arguments.quiet:
        for record in records:
            print(f"  {record.name}:")
            for metric, value in sorted(record.metrics.items()):
                print(f"    {metric:35s} {value:12.4g}")

    if telemetry_mark is not None:
        wall = time.perf_counter() - suite_start
        report = TelemetryReport.merge(
            "perf-suite",
            [TRACER.collect(telemetry_mark)],
            scenarios=len(records),
            executed=len(records) - loaded,
            wall=wall,
            workers=1,
        )
        if arguments.trace:
            write_trace_json(arguments.trace, report)
            print(f"wrote {arguments.trace}")
        if arguments.telemetry:
            with open(arguments.telemetry, "w") as handle:
                handle.write(report.to_markdown() + "\n")
            print(f"wrote {arguments.telemetry}")
        if not arguments.quiet:
            print(
                f"telemetry: {report.executed} benchmark(s) executed in "
                f"{report.wall:.2f}s"
            )

    if arguments.publish:
        from ..report.history import DEFAULT_HISTORY_DIR, append_history

        root = repo_root()
        published = BaselineStore(root)
        history_directory = root / DEFAULT_HISTORY_DIR
        for record in records:
            path = published.save(record)
            print(f"  published {path}")
            history = append_history(record, history_directory)
            print(f"  appended {history}")

    if arguments.report:
        from ..report import Dashboard, bench_section
        from ..report.history import (
            DEFAULT_HISTORY_DIR,
            load_history,
            merge_latest,
        )

        history_directory = repo_root() / DEFAULT_HISTORY_DIR
        history = (
            load_history(history_directory) if history_directory.exists() else {}
        )
        series = merge_latest(history, {record.name: record for record in records})
        dashboard = Dashboard(
            title="Benchmark trends",
            subtitle=f"{'smoke' if arguments.smoke else 'full'} workloads",
        )
        dashboard.add(bench_section(series, tolerance=arguments.tolerance))
        print(f"wrote {dashboard.write(arguments.report)}")

    if arguments.compare:
        regressions, missing = store.compare(records, tolerance=arguments.tolerance)
        for name in missing:
            print(
                f"  note: no comparable baseline for {name!r} in "
                f"{store.directory} (never recorded, or recorded at a "
                f"different workload size)"
            )
        if regressions:
            print(f"\n{len(regressions)} regression(s) vs the last recorded baseline:")
            for regression in regressions:
                print(f"  REGRESSION {regression.describe()}")
            return 1 if arguments.strict else 0
        print("\nno regressions vs the last recorded baseline")
        return 0

    for record in records:
        path = store.save(record)
        print(f"  wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
