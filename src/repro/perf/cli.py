"""The ``repro-bench`` entry point: record/compare performance baselines.

Runs the standard :mod:`repro.perf.suite` workloads and writes one
``BENCH_<name>.json`` per benchmark into the baseline directory.  With
``--compare`` the suite is re-run and the fresh numbers are checked against
the last recorded baselines instead of overwriting them; regressions beyond
``--tolerance`` are reported (and fail the run under ``--strict``).

Baselines are wall-clock numbers of *this* machine — record and compare on
the same host.  ``benchmarks/record.py`` is the in-repo wrapper that defaults
the baseline directory to ``benchmarks/baselines/``; the installed
``repro-bench`` script defaults to ``./perf-baselines``.
"""

from __future__ import annotations

import argparse

from .baseline import BaselineStore
from .suite import run_suite

DEFAULT_BASELINE_DIR = "perf-baselines"


def main(argv: "list[str] | None" = None, default_out: str = DEFAULT_BASELINE_DIR) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized workloads (seconds, not minutes); measured the same way",
    )
    parser.add_argument(
        "--out",
        default=default_out,
        help=f"baseline directory (default: {default_out}/)",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="compare against the recorded baselines instead of overwriting them",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="fraction of baseline performance a metric may lose before it is "
        "flagged (default 0.30, i.e. flag below 70%% retained)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when --compare finds regressions",
    )
    arguments = parser.parse_args(argv)
    store = BaselineStore(arguments.out)

    print(f"Running the perf suite ({'smoke' if arguments.smoke else 'full'} size)...")
    records = run_suite(smoke=arguments.smoke)
    for record in records:
        print(f"  {record.name}:")
        for metric, value in sorted(record.metrics.items()):
            print(f"    {metric:35s} {value:12.4g}")

    if arguments.compare:
        regressions, missing = store.compare(records, tolerance=arguments.tolerance)
        for name in missing:
            print(
                f"  note: no comparable baseline for {name!r} in "
                f"{store.directory} (never recorded, or recorded at a "
                f"different workload size)"
            )
        if regressions:
            print(f"\n{len(regressions)} regression(s) vs the last recorded baseline:")
            for regression in regressions:
                print(f"  REGRESSION {regression.describe()}")
            return 1 if arguments.strict else 0
        print("\nno regressions vs the last recorded baseline")
        return 0

    for record in records:
        path = store.save(record)
        print(f"  wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
