"""Performance measurement, baselines and regression detection (``repro.perf``).

The ROADMAP's north star is "as fast as the hardware allows"; this package is
how the repository *knows* whether it still is.  It provides

* :mod:`~repro.perf.baseline` — :class:`BenchmarkRecord` (one benchmark's
  machine-readable metrics), :class:`BaselineStore` (``BENCH_<name>.json``
  files on disk) and :func:`compare_records` (regression flagging against the
  last recorded baseline);
* :mod:`~repro.perf.suite` — the standard benchmark workloads shared by
  ``benchmarks/record.py`` and the micro-benchmark tests: ISS
  instruction throughput (per-tick vs. block-stepped), DE-kernel event
  throughput, and a firmware-bound platform run;
* timing helpers (:func:`best_of`) used by all of them.

Typical use::

    PYTHONPATH=src python benchmarks/record.py --smoke           # record
    PYTHONPATH=src python benchmarks/record.py --smoke --compare # regressions?
"""

from __future__ import annotations

from .baseline import (
    BaselineStore,
    BenchmarkRecord,
    Regression,
    best_of,
    compare_records,
)

__all__ = [
    "BaselineStore",
    "BenchmarkRecord",
    "Regression",
    "best_of",
    "compare_records",
]
