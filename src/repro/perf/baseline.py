"""Benchmark records, JSON baselines and regression comparison.

A *baseline* is the last recorded performance of one benchmark on one
machine, stored as a ``BENCH_<name>.json`` file.  ``benchmarks/record.py``
emits them; its ``--compare`` mode re-runs the suite and flags metrics that
regressed beyond a tolerance.  Baselines are machine-specific wall-clock
numbers — compare them only against baselines recorded on the same host.
"""

from __future__ import annotations

import functools
import json
import platform as _platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from ..errors import ReproError
from ..store.atomic import atomic_write_text


class PerfError(ReproError):
    """Raised for malformed baseline files or inconsistent comparisons."""


def _git(*arguments: str) -> "str | None":
    """Stdout of one git command, or ``None`` when git/repo is unavailable."""
    try:
        completed = subprocess.run(
            ("git", *arguments),
            capture_output=True,
            text=True,
            timeout=10.0,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout


@functools.lru_cache(maxsize=1)
def git_identity() -> "tuple[str | None, bool | None]":
    """``(commit_hash, dirty_flag)`` of the working tree, or ``(None, None)``.

    Cached for the process lifetime: a suite run records several benchmarks
    and they should all carry the *same* identity, not race a concurrent
    commit.  Outside a git checkout both values are ``None`` — baselines
    recorded from an installed wheel simply omit the provenance.
    """
    commit = _git("rev-parse", "HEAD")
    if commit is None:
        return None, None
    status = _git("status", "--porcelain")
    dirty = None if status is None else bool(status.strip())
    return commit.strip(), dirty


def best_of(function: Callable[[], object], repeats: int = 3) -> float:
    """Wall-clock seconds of the fastest of ``repeats`` calls to ``function``.

    The *minimum* is the standard estimator for micro-benchmarks: noise from
    scheduling and garbage collection only ever adds time, so the fastest
    observation is the closest to the true cost.
    """
    if repeats < 1:
        raise PerfError(
            f"best_of needs at least one repeat to take a minimum over "
            f"(got repeats={repeats})"
        )
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


@dataclass
class BenchmarkRecord:
    """One benchmark's machine-readable outcome.

    ``metrics`` maps metric name to value; names listed in ``maximize`` are
    throughput-like (higher is better), all others are cost-like (lower is
    better).  ``meta`` carries provenance: interpreter, platform, workload
    scale — anything a human needs to judge comparability.
    """

    name: str
    metrics: dict[str, float]
    maximize: tuple[str, ...] = ()
    meta: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        unknown = [key for key in self.maximize if key not in self.metrics]
        if unknown:
            raise PerfError(
                f"benchmark {self.name!r} declares maximize metrics {unknown} "
                f"that are not in its metrics table {sorted(self.metrics)}"
            )

    @staticmethod
    def environment_meta() -> dict[str, object]:
        """Provenance every record should carry (interpreter + machine + tree).

        ``git_commit``/``git_dirty`` pin the record to the exact source it
        measured; ``git_dirty`` true means uncommitted changes were present,
        so the number is not reproducible from the commit alone.  Both are
        ``None`` outside a git checkout.
        """
        commit, dirty = git_identity()
        return {
            "python": sys.version.split()[0],
            "implementation": _platform.python_implementation(),
            "machine": _platform.machine(),
            "recorded_unix_time": round(time.time(), 3),
            "git_commit": commit,
            "git_dirty": dirty,
        }

    def to_json(self) -> str:
        return json.dumps(
            {
                "name": self.name,
                "metrics": self.metrics,
                "maximize": list(self.maximize),
                "meta": self.meta,
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "BenchmarkRecord":
        try:
            payload = json.loads(text)
            return cls(
                name=payload["name"],
                metrics={key: float(value) for key, value in payload["metrics"].items()},
                maximize=tuple(payload.get("maximize", ())),
                meta=dict(payload.get("meta", {})),
            )
        except (AttributeError, KeyError, TypeError, ValueError) as exc:
            raise PerfError(f"malformed benchmark record: {exc}") from exc


@dataclass(frozen=True)
class Regression:
    """One metric that moved the wrong way past the tolerance."""

    benchmark: str
    metric: str
    baseline: float
    current: float
    #: current/baseline for maximize metrics, baseline/current otherwise —
    #: always "fraction of the baseline performance retained" (< 1 is worse).
    retained: float

    def describe(self) -> str:
        return (
            f"{self.benchmark}.{self.metric}: {self.current:.4g} vs baseline "
            f"{self.baseline:.4g} ({self.retained * 100.0:.0f}% retained)"
        )


def compare_records(
    baseline: BenchmarkRecord,
    current: BenchmarkRecord,
    tolerance: float = 0.30,
) -> list[Regression]:
    """Metrics of ``current`` that regressed beyond ``tolerance``.

    ``tolerance`` is the fraction of baseline performance a metric may lose
    before being flagged (0.30 = flag anything retaining < 70%); generous by
    default because wall-clock numbers on shared machines are noisy.  Metrics
    present in only one record are ignored — adding a benchmark metric must
    not fail the comparison against older baselines.
    """
    if baseline.name != current.name:
        raise PerfError(
            f"comparing different benchmarks: {baseline.name!r} vs {current.name!r}"
        )
    if not 0.0 <= tolerance < 1.0:
        raise PerfError(
            f"tolerance is the fraction of baseline performance a metric may "
            f"lose and must be in [0, 1); got {tolerance!r}"
        )
    regressions: list[Regression] = []
    for metric, base_value in baseline.metrics.items():
        if metric not in current.metrics:
            continue
        value = current.metrics[metric]
        if base_value <= 0.0 or value <= 0.0:
            continue
        if metric in baseline.maximize:
            retained = value / base_value
        else:
            retained = base_value / value
        if retained < 1.0 - tolerance:
            regressions.append(
                Regression(
                    benchmark=current.name,
                    metric=metric,
                    baseline=base_value,
                    current=value,
                    retained=retained,
                )
            )
    return regressions


class BaselineStore:
    """Directory of ``BENCH_<name>.json`` baseline files."""

    PREFIX = "BENCH_"

    def __init__(self, directory: "str | Path") -> None:
        self.directory = Path(directory)

    def path_for(self, name: str) -> Path:
        return self.directory / f"{self.PREFIX}{name}.json"

    def save(self, record: BenchmarkRecord) -> Path:
        """Write (or overwrite) the baseline for ``record.name``.

        Published atomically (write-temp-then-``os.replace``, the shared
        :mod:`repro.store.atomic` primitive): a comparison racing a
        re-record, or a crash mid-save, can never observe a torn baseline.
        """
        return atomic_write_text(
            self.path_for(record.name), record.to_json() + "\n"
        )

    @staticmethod
    def _load_path(path: Path) -> BenchmarkRecord:
        """Parse one baseline file; errors name the offending file."""
        try:
            return BenchmarkRecord.from_json(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise PerfError(f"cannot read baseline file {path}: {exc}") from exc
        except PerfError as exc:
            raise PerfError(f"malformed baseline file {path}: {exc}") from exc

    def load(self, name: str) -> "BenchmarkRecord | None":
        """The last recorded baseline for ``name``, or ``None``."""
        path = self.path_for(name)
        if not path.exists():
            return None
        return self._load_path(path)

    def load_all(self) -> dict[str, BenchmarkRecord]:
        """Every baseline in the directory, keyed by benchmark name."""
        records: dict[str, BenchmarkRecord] = {}
        if not self.directory.exists():
            return records
        for path in sorted(self.directory.glob(f"{self.PREFIX}*.json")):
            record = self._load_path(path)
            records[record.name] = record
        return records

    def compare(
        self,
        records: Iterable[BenchmarkRecord],
        tolerance: float = 0.30,
    ) -> tuple[list[Regression], list[str]]:
        """Compare fresh ``records`` against the stored baselines.

        Returns ``(regressions, missing)`` where ``missing`` lists benchmarks
        with no *comparable* baseline: never recorded, or recorded at a
        different workload size (``meta["smoke"]``) — even rate metrics shift
        a little with workload size, so smoke runs are only compared against
        smoke baselines and full runs against full ones.
        """
        regressions: list[Regression] = []
        missing: list[str] = []
        for record in records:
            baseline = self.load(record.name)
            if baseline is None or baseline.meta.get("smoke") != record.meta.get(
                "smoke"
            ):
                missing.append(record.name)
                continue
            regressions.extend(compare_records(baseline, record, tolerance))
        return regressions, missing
