"""Exception hierarchy shared by every ``repro`` subpackage.

Keeping all exceptions in a single module lets callers catch
:class:`ReproError` to handle any library failure, or a specific subclass
when they care about one failure mode (e.g. a parse error versus a
non-linear equation during abstraction).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ExpressionError(ReproError):
    """Base class for errors raised by the symbolic expression engine."""


class EvaluationError(ExpressionError):
    """An expression could not be numerically evaluated.

    Typical causes are an unbound variable or an unknown function name.
    """


class NonLinearExpressionError(ExpressionError):
    """An expression that was required to be linear in some variables is not."""


class UnsolvableEquationError(ExpressionError):
    """A linear equation could not be solved for the requested variable."""


class VamsError(ReproError):
    """Base class for Verilog-AMS frontend errors."""


class VamsLexerError(VamsError):
    """The Verilog-AMS lexer met a character sequence it cannot tokenise."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class VamsParseError(VamsError):
    """The Verilog-AMS parser met an unexpected token."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class NetworkError(ReproError):
    """Base class for electrical-network construction and analysis errors."""


class TopologyError(NetworkError):
    """The circuit topology is malformed (dangling node, missing ground, ...)."""


class SingularNetworkError(NetworkError):
    """The network equations are singular and cannot be solved."""


class AbstractionError(ReproError):
    """Base class for failures of the abstraction methodology (core pipeline)."""


class AcquisitionError(AbstractionError):
    """Step 1 (acquisition) could not build the equation multimap or graph."""


class EnrichmentError(AbstractionError):
    """Step 2 (enrichment) could not derive or re-solve Kirchhoff equations."""


class AssembleError(AbstractionError):
    """Step 3 (assemble) could not resolve the output of interest."""


class CodeGenerationError(AbstractionError):
    """Step 4 (code generation) could not emit the requested backend."""


class CodegenError(CodeGenerationError):
    """A codegen backend exists but cannot run here (missing toolchain/dependency).

    Distinct from :class:`CodeGenerationError` raised for unknown backends or
    malformed models: this one means "the ``native`` tier would work on a
    machine with a C compiler and cffi, but not on this one" — callers that
    can degrade (sweep/fuzz CLIs) catch it and fall back to ``numpy``.
    """


class SimulationError(ReproError):
    """Base class for simulation-kernel errors (DE, TDF, ELN, reference AMS)."""


class SchedulingError(SimulationError):
    """A TDF cluster could not be statically scheduled."""


class CoSimulationError(SimulationError):
    """The co-simulation bridge lost synchronisation between the two engines."""


class PlatformError(ReproError):
    """Base class for virtual-platform (CPU, bus, peripherals) errors."""


class AssemblerError(PlatformError):
    """The MIPS assembler rejected a source program."""


class CpuFault(PlatformError):
    """The MIPS instruction-set simulator hit an illegal instruction or access."""


class BusError(PlatformError):
    """An APB transaction addressed an unmapped region or misbehaved."""


class FaultError(ReproError):
    """A fault model or campaign specification is malformed or inapplicable."""


class StoreError(ReproError):
    """A campaign store is unusable: unwritable, malformed, or incompatible."""


class CampaignInterrupted(ReproError):
    """A batch run was deliberately cut short after a checkpoint commit.

    Raised by the sweep engines when an ``interrupt_after`` budget is
    exhausted — the crash-simulation hook used by the resume tests and the
    CI resume-smoke job.  Already-committed results survive in the run
    store; resuming the same spec against the same store completes the
    remaining scenarios.
    """
