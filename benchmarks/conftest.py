"""Shared fixtures and configuration for the benchmark harness.

Every benchmark regenerates one row (or one row group) of the paper's tables.
Simulated time is scaled down by default (see ``repro.experiments.common``);
set ``REPRO_SIM_TIME_SCALE=1`` before running to reproduce the paper-size
workloads.  Benchmarks are configured for a single measurement round because
each measurement already simulates thousands of analog timesteps.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import (
    PAPER_TABLE1_SIMULATED_TIME,
    PAPER_TABLE2_SIMULATED_TIME,
    PAPER_TABLE3_SIMULATED_TIME,
    PAPER_TIMESTEP,
    prepare_benchmarks,
    scaled_duration,
)

#: Component names in the paper's row order.
COMPONENTS = ("2IN", "RC1", "RC20", "OA")


def pytest_collection_modifyitems(items):
    """Keep table order stable: table1 rows, table2, table3, then studies."""
    items.sort(key=lambda item: item.nodeid)


@pytest.fixture(scope="session")
def prepared_models():
    """Abstract the four benchmark circuits once for the whole session."""
    return {prepared.name: prepared for prepared in prepare_benchmarks()}


@pytest.fixture(scope="session")
def table1_duration() -> float:
    return scaled_duration(PAPER_TABLE1_SIMULATED_TIME)


@pytest.fixture(scope="session")
def table2_duration() -> float:
    # Table II uses a 10 s simulated time in the paper; even scaled by the
    # default factor that is millions of analog steps, so the benchmark suite
    # divides it by a further 10 to stay in the tens-of-seconds range.  The
    # speed-up ratios it reports are unaffected by the absolute duration.
    return scaled_duration(PAPER_TABLE2_SIMULATED_TIME) / 10.0


@pytest.fixture(scope="session")
def table3_duration() -> float:
    # The platform simulates both the CPU and the analog device, so the
    # default scale is reduced further to keep the whole suite quick.
    return scaled_duration(PAPER_TABLE3_SIMULATED_TIME, minimum_steps=1000) / 4.0


@pytest.fixture(scope="session")
def timestep() -> float:
    return PAPER_TIMESTEP
