#!/usr/bin/env python3
"""Benchmark of the platform sweep layer: full virtual platforms in bulk.

Expands a 64-scenario platform design space — analog parameter corners ×
analog integration styles × firmware variants — and runs every scenario
through a complete :class:`~repro.vp.platform.SmartSystemPlatform` (MIPS CPU
+ APB + UART + ADC on the DE kernel), comparing:

* ``tick``    — serial, with the historical one-instruction-per-DE-event CPU
  integration (``cpu_block_cycles=1``);
* ``serial``  — serial, with block-stepped CPU scheduling (the default);
* ``workers`` — the same scenario list fanned across ``multiprocessing``
  workers by :class:`~repro.sweep.platform.PlatformSweepRunner`.

Scenario outcomes (instructions, UART bytes, ADC samples, crossing counts)
must be identical between all three runs — the tick/block comparison is the
block-stepping timing-equivalence acceptance check over the full scenario
matrix; on a multi-core machine the acceptance target is a >=4x wall-clock
speed-up with 8 workers.

Run with:   PYTHONPATH=src python benchmarks/bench_platform_sweep.py [--smoke]

``--smoke`` shrinks the workload for CI (fewer scenarios, shorter runs) and
only enforces the serial/parallel equivalence, not the timing target.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.circuits import build_rc_filter  # noqa: E402
from repro.sim import SquareWave  # noqa: E402
from repro.sweep import GridSpec, PlatformScenarioSpec, PlatformSweepRunner  # noqa: E402
from repro.vp import averaging_monitor_source, threshold_monitor_source  # noqa: E402

TIMESTEP = 50e-9
#: Two stimulus families: the paper's square wave at two excitation rates.
STIMULI = {
    "fast": {"vin": SquareWave(period=40e-6)},
    "slow": {"vin": SquareWave(period=80e-6, duty=0.3)},
}


def build_spec(corner_points: int) -> PlatformScenarioSpec:
    """``corner_points``² analog corners × 4 styles × 2 firmwares × 2 stimuli."""
    resistances = [4e3 + index * 2e3 / max(corner_points - 1, 1) for index in range(corner_points)]
    capacitances = [20e-9 + index * 10e-9 / max(corner_points - 1, 1) for index in range(corner_points)]
    return PlatformScenarioSpec(
        parameters=GridSpec(
            axes={"resistance": resistances, "capacitance": capacitances},
            base={"order": 1},
        ),
        styles=("python", "de", "tdf", "eln"),
        firmwares={
            "threshold": threshold_monitor_source(100),
            "averaging": averaging_monitor_source(),
        },
        stimuli=("fast", "slow"),
    )


def bench(corner_points: int, duration: float, workers: int, smoke: bool) -> int:
    spec = build_spec(corner_points)
    scenarios = len(spec)
    steps = int(round(duration / TIMESTEP))
    print(
        f"Platform sweep: {scenarios} scenarios "
        f"({corner_points}x{corner_points} analog corners x 4 styles x 2 firmwares "
        f"x 2 stimulus families), {steps} analog steps each "
        f"(dt = {TIMESTEP * 1e9:.0f} ns)"
    )

    def make_runner(n_workers: int, cpu_block_cycles: int = 256) -> PlatformSweepRunner:
        return PlatformSweepRunner(
            build_rc_filter,
            "out",
            STIMULI,
            timestep=TIMESTEP,
            workers=n_workers,
            record_analog=False,
            cpu_block_cycles=cpu_block_cycles,
        )

    start = time.perf_counter()
    per_tick = make_runner(1, cpu_block_cycles=1).run(spec, duration)
    tick_wall = time.perf_counter() - start

    start = time.perf_counter()
    serial = make_runner(1).run(spec, duration)
    serial_wall = time.perf_counter() - start

    start = time.perf_counter()
    parallel = make_runner(workers).run(spec, duration)
    parallel_wall = time.perf_counter() - start

    block_identical = per_tick.fingerprints() == serial.fingerprints()
    identical = serial.fingerprints() == parallel.fingerprints()
    block_speedup = tick_wall / serial_wall if serial_wall > 0 else float("inf")
    speedup = serial_wall / parallel_wall if parallel_wall > 0 else float("inf")

    print(f"  tick    (1 process, block=1)   : {tick_wall:8.3f} s")
    print(f"  serial  (1 process, wall)      : {serial_wall:8.3f} s "
          f"-> {block_speedup:.2f}x vs per-tick CPU stepping")
    print(f"  workers ({parallel.workers} processes, wall)    : {parallel_wall:8.3f} s "
          f"-> {speedup:.2f}x vs serial")
    print(f"  block-stepping fingerprints identical to per-tick: {block_identical}")
    print(f"  per-scenario outcomes identical: {identical}")
    print()
    print(serial.to_markdown().split("## Scenarios")[0])

    if not block_identical:
        print("FAIL: block-stepped scenario outcomes deviate from per-tick execution")
        return 1
    if not identical:
        print("FAIL: multiprocess scenario outcomes deviate from serial execution")
        return 1
    if not smoke:
        cores = os.cpu_count() or 1
        target = 4.0
        if cores >= 2 * int(target):
            verdict = "meets" if speedup >= target else "BELOW"
            print(f"  -> platform sweep {verdict} the {target:.0f}x acceptance target "
                  f"({cores} cores)")
        else:
            print(f"  -> {cores} core(s): the {target:.0f}x multi-core target "
                  f"is not assessable on this machine")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload for CI (correctness + plumbing, not timing quality)",
    )
    parser.add_argument("--corners", type=int, default=None,
                        help="analog corner points per axis (scenarios = corners^2 * 16)")
    parser.add_argument("--duration", type=float, default=None,
                        help="override the simulated time per scenario in seconds")
    parser.add_argument("--workers", type=int, default=8,
                        help="process count for the multiprocess row")
    arguments = parser.parse_args(argv)

    if arguments.smoke:
        corners = 1 if arguments.corners is None else arguments.corners
        duration = 20e-6 if arguments.duration is None else arguments.duration
        workers = min(arguments.workers, 2)
    else:
        # 2x2 corners x 4 styles x 2 firmwares x 2 stimuli = 64 scenarios (the
        # acceptance configuration: >=3 analog styles, >=2 firmwares, 64 runs).
        corners = 2 if arguments.corners is None else arguments.corners
        duration = 100e-6 if arguments.duration is None else arguments.duration
        workers = arguments.workers
    if corners < 1:
        parser.error("--corners must be at least 1")
    if duration <= 0.0:
        parser.error("--duration must be positive")
    return bench(corners, duration, workers, arguments.smoke)


if __name__ == "__main__":
    raise SystemExit(main())
