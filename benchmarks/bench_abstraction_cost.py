"""Abstraction-tool cost: processing time per step and versus circuit size.

The paper reports that "the abstraction tool spent 7.67 s to process the most
complex model, i.e. RC20, which features 22 nodes and 41 branches" and gives
per-step asymptotic complexities (Section IV).  These benchmarks measure the
processing time of each pipeline step for the paper's components and sweep
the RC-ladder order to expose the growth trend.
"""

from __future__ import annotations

import pytest

from repro.circuits import benchmark_by_name, build_rc_filter
from repro.core import AbstractionFlow, acquire, enrich
from repro.core.assemble import Assembler
from repro.core.codegen import generate_all
from repro.experiments.common import PAPER_TIMESTEP

COMPONENTS = ("2IN", "RC1", "RC20", "OA")
LADDER_ORDERS = (1, 4, 8, 16, 20, 32)


@pytest.mark.parametrize("component", COMPONENTS)
def test_full_abstraction(benchmark, component):
    """Total tool time per benchmark component (paper: 7.67 s for RC20)."""
    bench = benchmark_by_name(component)
    flow = AbstractionFlow(PAPER_TIMESTEP)

    report = benchmark(lambda: flow.abstract(bench.circuit(), bench.output))
    benchmark.extra_info["component"] = component
    benchmark.extra_info["nodes"] = report.acquisition.node_count
    benchmark.extra_info["branches"] = report.acquisition.branch_count
    assert report.model.outputs == [bench.output_quantity]


@pytest.mark.parametrize("order", LADDER_ORDERS)
def test_ladder_sweep(benchmark, order):
    """Tool time versus circuit size (the RCn sweep 'figure')."""
    circuit = build_rc_filter(order)
    flow = AbstractionFlow(PAPER_TIMESTEP)
    report = benchmark(lambda: flow.abstract(build_rc_filter(order), "out"))
    benchmark.extra_info["order"] = order
    benchmark.extra_info["nodes"] = report.acquisition.node_count
    benchmark.extra_info["branches"] = report.acquisition.branch_count
    assert report.assembled.cone_size >= order


@pytest.mark.parametrize("step", ["acquisition", "enrichment", "assemble"])
def test_individual_steps_rc20(benchmark, step):
    """Per-step cost on RC20 (matches the per-step complexities of Section IV)."""
    circuit = build_rc_filter(20)
    acquisition = acquire(circuit)
    if step == "acquisition":
        benchmark(lambda: acquire(build_rc_filter(20)))
    elif step == "enrichment":
        benchmark(lambda: enrich(acquisition, PAPER_TIMESTEP))
    else:
        enrichment = enrich(acquisition, PAPER_TIMESTEP)
        benchmark(lambda: Assembler(enrichment).assemble(["V(out)"]))
    benchmark.extra_info["step"] = step


def test_code_generation_all_backends(benchmark):
    """Step 4 cost: emitting all four backends for the largest model."""
    flow = AbstractionFlow(PAPER_TIMESTEP)
    model = flow.abstract(build_rc_filter(20), "out").model
    artefacts = benchmark(lambda: generate_all(model))
    assert set(artefacts) == {"cpp", "numpy", "python", "systemc_de", "systemc_tdf"}
