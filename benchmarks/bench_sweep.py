#!/usr/bin/env python3
"""Benchmark of the batch engine: vectorized sweep versus serial runs.

Simulates an RC tolerance Monte-Carlo three ways and reports wall time:

* ``serial``   — one :func:`repro.sim.run_python_model` call per scenario
  (the pre-sweep workflow: the baseline the acceptance criterion names);
* ``batch``    — one vectorized NumPy ``step_batch`` instance advancing all
  scenarios per timestep (``SweepRunner`` with ``backend="numpy"``);
* ``workers``  — the same batch chunked across ``multiprocessing`` workers.

Run with:   PYTHONPATH=src python benchmarks/bench_sweep.py [--smoke]

``--smoke`` shrinks the workload for CI (fewer scenarios, shorter runs);
the full run uses the 256-scenario sweep the acceptance criterion asks for,
where the vectorized backend is expected to be well beyond 10x the serial
baseline.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np  # noqa: E402

from repro.circuits import build_rc_filter  # noqa: E402
from repro.core import AbstractionFlow  # noqa: E402
from repro.sim import SquareWave, run_python_model  # noqa: E402
from repro.sweep import MonteCarloSpec, SweepRunner  # noqa: E402

TIMESTEP = 50e-9
STIMULI = {"vin": SquareWave(period=1e-3)}


def build_spec(samples: int) -> MonteCarloSpec:
    return MonteCarloSpec(
        nominal={"order": 1, "resistance": 5e3, "capacitance": 25e-9},
        tolerances={"resistance": 0.05, "capacitance": 0.05},
        samples=samples,
        seed=7,
    )


def bench(samples: int, duration: float, workers: int) -> int:
    spec = build_spec(samples)
    steps = int(round(duration / TIMESTEP))
    print(f"RC tolerance sweep: {samples} scenarios x {steps} timesteps "
          f"(dt = {TIMESTEP * 1e9:.0f} ns)")

    # -- serial baseline: abstract once per scenario, then N scalar runs ---------------
    flow = AbstractionFlow(TIMESTEP)
    models = [
        flow.abstract(build_rc_filter(**scenario.params), "out", name="rc1").model
        for scenario in spec.expand()
    ]
    start = time.perf_counter()
    serial_traces = [
        run_python_model(model, STIMULI, duration) for model in models
    ]
    serial_time = time.perf_counter() - start

    # -- vectorized batch --------------------------------------------------------------
    runner = SweepRunner(
        build_rc_filter, "out", stimuli=STIMULI, timestep=TIMESTEP, backend="numpy"
    )
    result = runner.run(spec, duration)
    batch_time = result.timings["simulate"]

    # -- multiprocess batch ------------------------------------------------------------
    parallel = SweepRunner(
        build_rc_filter, "out", stimuli=STIMULI, timestep=TIMESTEP, workers=workers
    )
    start = time.perf_counter()
    parallel_result = parallel.run(spec, duration)
    parallel_wall = time.perf_counter() - start

    deviation = max(
        float(np.max(np.abs(trace.waveform("V(out)") - result.ensemble("V(out)")[k])))
        for k, trace in enumerate(serial_traces)
    )
    speedup = serial_time / batch_time

    print(f"  serial   ({samples} x run_python_model): {serial_time:8.3f} s")
    print(f"  batch    (vectorized step_batch)      : {batch_time:8.3f} s "
          f"-> {speedup:.1f}x vs serial")
    print(f"  workers  ({parallel_result.workers} processes, wall)      : "
          f"{parallel_wall:8.3f} s (includes abstraction)")
    print(f"  abstraction (all scenarios)           : "
          f"{result.timings['abstract']:8.3f} s")
    print(f"  max |batch - serial| deviation        : {deviation:.2e}")

    if deviation > 1e-12:
        print("FAIL: batch deviates from the serial baseline beyond 1e-12")
        return 1
    target = 10.0
    verdict = "meets" if speedup >= target else "BELOW"
    print(f"  -> vectorized backend {verdict} the {target:.0f}x acceptance target")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload for CI (correctness + plumbing, not timing quality)",
    )
    parser.add_argument("--samples", type=int, default=None,
                        help="override the scenario count")
    parser.add_argument("--duration", type=float, default=None,
                        help="override the simulated time in seconds")
    parser.add_argument("--workers", type=int, default=4,
                        help="process count for the multiprocess row")
    arguments = parser.parse_args(argv)

    if arguments.smoke:
        samples = 32 if arguments.samples is None else arguments.samples
        duration = 0.05e-3 if arguments.duration is None else arguments.duration
        workers = min(arguments.workers, 2)
    else:
        samples = 256 if arguments.samples is None else arguments.samples
        duration = 0.2e-3 if arguments.duration is None else arguments.duration
        workers = arguments.workers
    if samples < 1:
        parser.error("--samples must be at least 1")
    if duration <= 0.0:
        parser.error("--duration must be positive")
    return bench(samples, duration, workers)


if __name__ == "__main__":
    raise SystemExit(main())
