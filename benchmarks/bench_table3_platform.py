"""Table III — the analog models integrated in the complete virtual platform.

The digital side (MIPS CPU + RAM + APB + UART running the threshold-monitor
firmware) is identical in every run; only the analog integration style
changes.  The first style (Verilog-AMS co-simulation) is the baseline the
speed-ups are measured against, as in the paper.
"""

from __future__ import annotations

import time

import pytest

from repro.experiments.table3 import build_platform

COMPONENTS = ("2IN", "RC1", "RC20", "OA")

#: (row label, style key) in the paper's order.
STYLES = (
    ("Verilog-AMS (cosim)", "cosim"),
    ("SC-AMS/ELN", "eln"),
    ("SC-AMS/TDF", "tdf"),
    ("SC-DE", "de"),
    ("C++", "python"),
)

_BASELINE_CACHE: dict[str, float] = {}


def _cosim_time(prepared, duration) -> float:
    if prepared.name not in _BASELINE_CACHE:
        platform = build_platform(prepared, "cosim")
        start = time.perf_counter()
        platform.run(duration)
        _BASELINE_CACHE[prepared.name] = time.perf_counter() - start
    return _BASELINE_CACHE[prepared.name]


@pytest.mark.parametrize("component", COMPONENTS)
@pytest.mark.parametrize("label_style", STYLES, ids=[style for _, style in STYLES])
def test_platform_integration(
    benchmark, prepared_models, table3_duration, component, label_style
):
    """One row of Table III: one component x one analog integration style."""
    label, style = label_style
    prepared = prepared_models[component]
    result_holder = {}

    def run():
        platform = build_platform(prepared, style)
        result_holder["result"] = platform.run(table3_duration)
        return result_holder["result"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    result = result_holder["result"]
    elapsed = benchmark.stats.stats.mean
    baseline = _cosim_time(prepared, table3_duration)

    benchmark.extra_info["component"] = component
    benchmark.extra_info["target"] = label
    benchmark.extra_info["speedup_vs_cosim"] = baseline / elapsed if elapsed else float("inf")
    benchmark.extra_info["instructions"] = result.instructions
    benchmark.extra_info["analog_samples"] = result.analog_samples

    # Sanity: the digital workload is identical regardless of the analog style.
    assert result.instructions > 0
    assert result.analog_samples > 0
    if style == "python":
        # Headline claim of the paper: the generated C++ integration is much
        # faster than co-simulating the original Verilog-AMS model.
        assert benchmark.extra_info["speedup_vs_cosim"] > 2.0
