"""Micro-benchmarks of the simulation substrates (ablation support).

These are not paper tables; they quantify where the time goes in each engine
(the per-step cost of the DE kernel, the TDF cluster, the ELN solve, the
reference engine's device evaluation, and the generated step function), which
is the data behind the DESIGN.md discussion of why the ordering of Tables I-III
comes out the way it does.
"""

from __future__ import annotations

import inspect
import time

import pytest

import repro.sim.de.kernel as de_kernel_module
import repro.vp.mips.cpu as mips_cpu_module
from repro.circuits import build_rc_filter
from repro.core import abstract_circuit
from repro.core.codegen import compile_model
from repro.experiments.common import PAPER_TIMESTEP
from repro.obs.tracer import TRACER
from repro.perf.suite import bench_iss, make_firmware_loop_cpu
from repro.sim import ElnModel, Kernel, PeriodicTicker, ReferenceAmsSimulator, Signal, SquareWave
from repro.vp import Memory, assemble

STEPS = 20_000

#: Instructions per ISS micro-benchmark measurement (smoke-friendly: one
#: measurement is a few tens of milliseconds).
ISS_INSTRUCTIONS = 100_000


@pytest.fixture(scope="module")
def compiled_rc20():
    return compile_model(abstract_circuit(build_rc_filter(20), "out", PAPER_TIMESTEP))


def test_generated_step_function(benchmark, compiled_rc20):
    """Cost of the bare generated model (the 'C++' inner loop)."""
    instance = compiled_rc20()

    def run():
        step = instance.step
        for _ in range(STEPS):
            step(1.0)

    benchmark(run)


def test_eln_step(benchmark):
    """Cost of the per-step conservative solution (ELN)."""
    model = ElnModel(build_rc_filter(20), PAPER_TIMESTEP)

    def run():
        for _ in range(STEPS // 10):
            model.step({"vin": 1.0})

    benchmark(run)


def test_reference_step(benchmark):
    """Cost of the reference engine's evaluate-and-solve step (Verilog-AMS)."""
    simulator = ReferenceAmsSimulator(build_rc_filter(20), PAPER_TIMESTEP)

    def run():
        for _ in range(STEPS // 100):
            simulator.step({"vin": 1.0})

    benchmark(run)


def test_de_kernel_event_throughput(benchmark):
    """Raw event-processing throughput of the discrete-event kernel."""

    def run():
        kernel = Kernel()
        counter = {"ticks": 0}
        PeriodicTicker(
            kernel, "tick", PAPER_TIMESTEP, lambda now: counter.__setitem__("ticks", counter["ticks"] + 1)
        )
        kernel.run(STEPS * PAPER_TIMESTEP)
        return counter["ticks"]

    ticks = benchmark(run)
    assert ticks == STEPS


def test_de_kernel_event_heavy_workload(benchmark):
    """Delta-cycle and static-sensitivity cost under a platform-like load.

    One ticker writes a signal every timestep; eight statically sensitive
    method processes wake on every change.  This is the pattern the virtual
    platform stresses (CPU clock + analog ticker + ADC sampler chains), so it
    is the workload the kernel's slot-reuse/dispatch optimizations target.
    """
    fanout = 8

    def run():
        kernel = Kernel()
        signal = Signal(kernel, 0.0, "load")
        wakeups = {"count": 0}
        for _ in range(fanout):
            signal.changed.add_static_method(
                lambda: wakeups.__setitem__("count", wakeups["count"] + 1)
            )
        ticks = {"count": 0}

        def drive(now: float) -> None:
            ticks["count"] += 1
            signal.write(float(ticks["count"]))

        PeriodicTicker(kernel, "drive", PAPER_TIMESTEP, drive)
        kernel.run((STEPS // 2) * PAPER_TIMESTEP)
        return wakeups["count"]

    wakeups = benchmark(run)
    assert wakeups == (STEPS // 2) * fanout


def test_iss_per_step_interpreter(benchmark):
    """Instructions/sec of the bare ISS, one ``step()`` call per instruction."""
    cpu = make_firmware_loop_cpu()

    def run():
        cpu.reset()
        step = cpu.step
        for _ in range(ISS_INSTRUCTIONS):
            step()

    benchmark(run)
    assert cpu.instruction_count >= ISS_INSTRUCTIONS


def test_iss_block_throughput(benchmark):
    """Instructions/sec of the block-stepped ISS (``run_block`` bursts)."""
    cpu = make_firmware_loop_cpu()

    def run():
        cpu.reset()
        done = 0
        while done < ISS_INSTRUCTIONS:
            done += cpu.run_block(ISS_INSTRUCTIONS - done)

    benchmark(run)


def test_iss_block_speedup_meets_target():
    """The tentpole's acceptance metric, measured rather than asserted blindly.

    Block-stepping must deliver >= 5x the instructions/sec of the historical
    one-instruction-per-DE-event integration on a firmware-style loop (same
    kernel, same retired instruction count; see ``repro.perf.suite``).
    """
    record = bench_iss(smoke=True)
    speedup = record.metrics["block_speedup_vs_tick"]
    assert speedup >= 5.0, (
        f"block stepping delivers only {speedup:.2f}x over the per-tick "
        f"interpreter (metrics: {record.metrics})"
    )


def test_iss_block_and_tick_retire_identically():
    """Block mode is a pure speedup: identical architectural outcomes."""
    instructions = 20_000
    outcomes = []
    for stepper in ("tick", "block"):
        # iss_throughput drives a fresh CPU through the kernel; replicate its
        # setup here to capture the final architectural state.
        from repro.perf.suite import CPU_PERIOD
        from repro.vp.platform import _CpuBlockDriver

        cpu = make_firmware_loop_cpu()
        kernel = Kernel()
        _CpuBlockDriver(
            kernel, "cpu.clock", cpu, CPU_PERIOD, 1 if stepper == "tick" else 256
        )
        kernel.run(instructions * CPU_PERIOD)
        outcomes.append(
            (cpu.instruction_count, cpu.pc, tuple(cpu.registers), cpu.hi, cpu.lo)
        )
    assert outcomes[0] == outcomes[1]


def test_square_wave_source(benchmark):
    """Cost of evaluating the stimulus waveform (shared by every engine)."""
    wave = SquareWave(period=1e-3)

    def run():
        total = 0.0
        for index in range(STEPS):
            total += wave(index * PAPER_TIMESTEP)
        return total

    benchmark(run)


# -- tracing-overhead ablation ---------------------------------------------------------
#
# repro.obs promises that *disabled* tracing is near-free on the hot paths.
# The seed (pre-observability) code is reconstructed at runtime by recompiling
# the instrumented modules with the known instrumentation statements stripped,
# then raced against the shipped disabled-tracing path, interleaved on the
# same workload.  The stripped statements are exactly the PR's hot-path
# additions; everything else in the module source is shared, so the measured
# delta is the instrumentation guard cost and nothing else.

#: Exact (whitespace-stripped) statements the observability PR added to the
#: hot paths; removing them reconstructs the seed code.
_TRACE_STATEMENTS = frozenset(
    {
        "tracer = TRACER",
        "trace = tracer.enabled",
        "misses = 0",
        "invalidations = 0",
        "misses += 1",
        "invalidations += 1",
        "self.block_count += 1",
        "self.decode_miss_count += misses",
        "self.decode_invalidation_count += invalidations",
        "span = decoded[first : last + 1]",
        "invalidated = sum(1 for entry in span if entry is not None)",
        "self.decode_invalidation_count += invalidated",
    }
)

#: Permitted slowdown of the shipped disabled-tracing path vs the seed.
_MAX_DISABLED_SLOWDOWN = 0.03


def _seed_variant(module) -> dict:
    """Recompile ``module`` with the tracing instrumentation stripped out.

    Removes every statement in :data:`_TRACE_STATEMENTS`, every line that
    mentions ``TRACER``, and every ``if trace``-guarded suite, then executes
    the surgically-reduced source in a fresh namespace (relative imports
    resolve against the real package).  The result is the seed's hot-path
    code, byte-for-byte minus the instrumentation.
    """
    out: list[str] = []
    skip_indent = None
    for line in inspect.getsource(module).splitlines():
        stripped = line.strip()
        if skip_indent is not None:
            indent = len(line) - len(line.lstrip())
            if stripped and indent <= skip_indent:
                if stripped == "else:" and indent == skip_indent:
                    # The untraced arm of an `if trace:`/`else:` pair: keep its
                    # suite, behind a constant-folded `if True:` header.
                    out.append(line[:indent] + "if True:")
                    skip_indent = None
                    continue
                skip_indent = None
            else:
                continue
        if stripped in _TRACE_STATEMENTS or "TRACER" in line:
            continue
        if stripped.startswith("if trace"):
            if stripped.endswith(":"):
                skip_indent = len(line) - len(line.lstrip())
            continue
        out.append(line)
    namespace = {
        "__name__": module.__name__ + "_seed",
        "__package__": module.__package__,
        "__builtins__": __builtins__,
    }
    exec(compile("\n".join(out), f"{module.__file__}<seed>", "exec"), namespace)
    return namespace


def _interleaved_best(run_seed, run_product, repeats: int = 7) -> "tuple[float, float]":
    """Fastest wall time of each runner, measured strictly alternating.

    Interleaving makes the pair share any frequency/thermal drift; the
    minimum estimator then discards scheduling noise (see ``best_of``).
    """
    best_seed = best_product = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run_seed()
        best_seed = min(best_seed, time.perf_counter() - start)
        start = time.perf_counter()
        run_product()
        best_product = min(best_product, time.perf_counter() - start)
    return best_seed, best_product


def _assert_disabled_overhead(name: str, run_seed, run_product, attempts: int = 3):
    """Assert the product runner stays within 3% of the seed runner.

    Shared machines jitter by more than 3%, and jitter can only *inflate* a
    measurement — so a clean measurement on any attempt is proof the guard is
    cheap, and only consistently-slow measurements fail the test.
    """
    seed_seconds = product_seconds = 0.0
    for _ in range(attempts):
        seed_seconds, product_seconds = _interleaved_best(run_seed, run_product)
        if product_seconds / seed_seconds - 1.0 < _MAX_DISABLED_SLOWDOWN:
            return
    slowdown = product_seconds / seed_seconds - 1.0
    raise AssertionError(
        f"{name}: disabled tracing costs {slowdown * 100.0:.1f}% vs the seed "
        f"(seed {seed_seconds * 1e3:.2f} ms, instrumented "
        f"{product_seconds * 1e3:.2f} ms) — the guard must stay "
        f"< {_MAX_DISABLED_SLOWDOWN * 100.0:.0f}%"
    )


def _ticker_workload(kernel_class):
    def run():
        kernel = kernel_class()
        counter = {"ticks": 0}
        PeriodicTicker(
            kernel,
            "tick",
            PAPER_TIMESTEP,
            lambda now: counter.__setitem__("ticks", counter["ticks"] + 1),
        )
        kernel.run(STEPS * PAPER_TIMESTEP)
        assert counter["ticks"] == STEPS

    return run


def test_de_ticker_tracing_disabled_overhead():
    """Disabled tracing adds <3% to the DE ticker vs the seed kernel."""
    assert not TRACER.enabled, "tier-1 benchmarks run with tracing disabled"
    seed_kernel_class = _seed_variant(de_kernel_module)["Kernel"]
    _assert_disabled_overhead(
        "de-ticker", _ticker_workload(seed_kernel_class), _ticker_workload(Kernel)
    )


def _block_workload(cpu):
    def run():
        cpu.reset()
        done = 0
        while done < ISS_INSTRUCTIONS:
            done += cpu.run_block(ISS_INSTRUCTIONS - done)
        assert cpu.instruction_count >= ISS_INSTRUCTIONS

    return run


def test_iss_block_tracing_disabled_overhead():
    """The instrumented block-stepped ISS stays within 3% of the seed ISS."""
    assert not TRACER.enabled, "tier-1 benchmarks run with tracing disabled"
    from repro.perf.suite import FIRMWARE_STYLE_LOOP

    seed_cpu_class = _seed_variant(mips_cpu_module)["MipsCpu"]
    image = assemble(FIRMWARE_STYLE_LOOP).to_bytes()

    def build(cpu_class):
        memory = Memory(size=64 * 1024)
        memory.load_image(image)
        return cpu_class(memory)

    _assert_disabled_overhead(
        "iss-block",
        _block_workload(build(seed_cpu_class)),
        _block_workload(build(mips_cpu_module.MipsCpu)),
    )
