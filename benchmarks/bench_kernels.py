"""Micro-benchmarks of the simulation substrates (ablation support).

These are not paper tables; they quantify where the time goes in each engine
(the per-step cost of the DE kernel, the TDF cluster, the ELN solve, the
reference engine's device evaluation, and the generated step function), which
is the data behind the DESIGN.md discussion of why the ordering of Tables I-III
comes out the way it does.
"""

from __future__ import annotations

import pytest

from repro.circuits import build_rc_filter
from repro.core import abstract_circuit
from repro.core.codegen import compile_model
from repro.experiments.common import PAPER_TIMESTEP
from repro.perf.suite import bench_iss, make_firmware_loop_cpu
from repro.sim import ElnModel, Kernel, PeriodicTicker, ReferenceAmsSimulator, Signal, SquareWave

STEPS = 20_000

#: Instructions per ISS micro-benchmark measurement (smoke-friendly: one
#: measurement is a few tens of milliseconds).
ISS_INSTRUCTIONS = 100_000


@pytest.fixture(scope="module")
def compiled_rc20():
    return compile_model(abstract_circuit(build_rc_filter(20), "out", PAPER_TIMESTEP))


def test_generated_step_function(benchmark, compiled_rc20):
    """Cost of the bare generated model (the 'C++' inner loop)."""
    instance = compiled_rc20()

    def run():
        step = instance.step
        for _ in range(STEPS):
            step(1.0)

    benchmark(run)


def test_eln_step(benchmark):
    """Cost of the per-step conservative solution (ELN)."""
    model = ElnModel(build_rc_filter(20), PAPER_TIMESTEP)

    def run():
        for _ in range(STEPS // 10):
            model.step({"vin": 1.0})

    benchmark(run)


def test_reference_step(benchmark):
    """Cost of the reference engine's evaluate-and-solve step (Verilog-AMS)."""
    simulator = ReferenceAmsSimulator(build_rc_filter(20), PAPER_TIMESTEP)

    def run():
        for _ in range(STEPS // 100):
            simulator.step({"vin": 1.0})

    benchmark(run)


def test_de_kernel_event_throughput(benchmark):
    """Raw event-processing throughput of the discrete-event kernel."""

    def run():
        kernel = Kernel()
        counter = {"ticks": 0}
        PeriodicTicker(
            kernel, "tick", PAPER_TIMESTEP, lambda now: counter.__setitem__("ticks", counter["ticks"] + 1)
        )
        kernel.run(STEPS * PAPER_TIMESTEP)
        return counter["ticks"]

    ticks = benchmark(run)
    assert ticks == STEPS


def test_de_kernel_event_heavy_workload(benchmark):
    """Delta-cycle and static-sensitivity cost under a platform-like load.

    One ticker writes a signal every timestep; eight statically sensitive
    method processes wake on every change.  This is the pattern the virtual
    platform stresses (CPU clock + analog ticker + ADC sampler chains), so it
    is the workload the kernel's slot-reuse/dispatch optimizations target.
    """
    fanout = 8

    def run():
        kernel = Kernel()
        signal = Signal(kernel, 0.0, "load")
        wakeups = {"count": 0}
        for _ in range(fanout):
            signal.changed.add_static_method(
                lambda: wakeups.__setitem__("count", wakeups["count"] + 1)
            )
        ticks = {"count": 0}

        def drive(now: float) -> None:
            ticks["count"] += 1
            signal.write(float(ticks["count"]))

        PeriodicTicker(kernel, "drive", PAPER_TIMESTEP, drive)
        kernel.run((STEPS // 2) * PAPER_TIMESTEP)
        return wakeups["count"]

    wakeups = benchmark(run)
    assert wakeups == (STEPS // 2) * fanout


def test_iss_per_step_interpreter(benchmark):
    """Instructions/sec of the bare ISS, one ``step()`` call per instruction."""
    cpu = make_firmware_loop_cpu()

    def run():
        cpu.reset()
        step = cpu.step
        for _ in range(ISS_INSTRUCTIONS):
            step()

    benchmark(run)
    assert cpu.instruction_count >= ISS_INSTRUCTIONS


def test_iss_block_throughput(benchmark):
    """Instructions/sec of the block-stepped ISS (``run_block`` bursts)."""
    cpu = make_firmware_loop_cpu()

    def run():
        cpu.reset()
        done = 0
        while done < ISS_INSTRUCTIONS:
            done += cpu.run_block(ISS_INSTRUCTIONS - done)

    benchmark(run)


def test_iss_block_speedup_meets_target():
    """The tentpole's acceptance metric, measured rather than asserted blindly.

    Block-stepping must deliver >= 5x the instructions/sec of the historical
    one-instruction-per-DE-event integration on a firmware-style loop (same
    kernel, same retired instruction count; see ``repro.perf.suite``).
    """
    record = bench_iss(smoke=True)
    speedup = record.metrics["block_speedup_vs_tick"]
    assert speedup >= 5.0, (
        f"block stepping delivers only {speedup:.2f}x over the per-tick "
        f"interpreter (metrics: {record.metrics})"
    )


def test_iss_block_and_tick_retire_identically():
    """Block mode is a pure speedup: identical architectural outcomes."""
    instructions = 20_000
    outcomes = []
    for stepper in ("tick", "block"):
        # iss_throughput drives a fresh CPU through the kernel; replicate its
        # setup here to capture the final architectural state.
        from repro.perf.suite import CPU_PERIOD
        from repro.vp.platform import _CpuBlockDriver

        cpu = make_firmware_loop_cpu()
        kernel = Kernel()
        _CpuBlockDriver(
            kernel, "cpu.clock", cpu, CPU_PERIOD, 1 if stepper == "tick" else 256
        )
        kernel.run(instructions * CPU_PERIOD)
        outcomes.append(
            (cpu.instruction_count, cpu.pc, tuple(cpu.registers), cpu.hi, cpu.lo)
        )
    assert outcomes[0] == outcomes[1]


def test_square_wave_source(benchmark):
    """Cost of evaluating the stimulus waveform (shared by every engine)."""
    wave = SquareWave(period=1e-3)

    def run():
        total = 0.0
        for index in range(STEPS):
            total += wave(index * PAPER_TIMESTEP)
        return total

    benchmark(run)
