"""Micro-benchmarks of the simulation substrates (ablation support).

These are not paper tables; they quantify where the time goes in each engine
(the per-step cost of the DE kernel, the TDF cluster, the ELN solve, the
reference engine's device evaluation, and the generated step function), which
is the data behind the DESIGN.md discussion of why the ordering of Tables I-III
comes out the way it does.
"""

from __future__ import annotations

import pytest

from repro.circuits import build_rc_filter
from repro.core import abstract_circuit
from repro.core.codegen import compile_model
from repro.experiments.common import PAPER_TIMESTEP
from repro.sim import ElnModel, Kernel, PeriodicTicker, ReferenceAmsSimulator, Signal, SquareWave

STEPS = 20_000


@pytest.fixture(scope="module")
def compiled_rc20():
    return compile_model(abstract_circuit(build_rc_filter(20), "out", PAPER_TIMESTEP))


def test_generated_step_function(benchmark, compiled_rc20):
    """Cost of the bare generated model (the 'C++' inner loop)."""
    instance = compiled_rc20()

    def run():
        step = instance.step
        for _ in range(STEPS):
            step(1.0)

    benchmark(run)


def test_eln_step(benchmark):
    """Cost of the per-step conservative solution (ELN)."""
    model = ElnModel(build_rc_filter(20), PAPER_TIMESTEP)

    def run():
        for _ in range(STEPS // 10):
            model.step({"vin": 1.0})

    benchmark(run)


def test_reference_step(benchmark):
    """Cost of the reference engine's evaluate-and-solve step (Verilog-AMS)."""
    simulator = ReferenceAmsSimulator(build_rc_filter(20), PAPER_TIMESTEP)

    def run():
        for _ in range(STEPS // 100):
            simulator.step({"vin": 1.0})

    benchmark(run)


def test_de_kernel_event_throughput(benchmark):
    """Raw event-processing throughput of the discrete-event kernel."""

    def run():
        kernel = Kernel()
        counter = {"ticks": 0}
        PeriodicTicker(
            kernel, "tick", PAPER_TIMESTEP, lambda now: counter.__setitem__("ticks", counter["ticks"] + 1)
        )
        kernel.run(STEPS * PAPER_TIMESTEP)
        return counter["ticks"]

    ticks = benchmark(run)
    assert ticks == STEPS


def test_de_kernel_event_heavy_workload(benchmark):
    """Delta-cycle and static-sensitivity cost under a platform-like load.

    One ticker writes a signal every timestep; eight statically sensitive
    method processes wake on every change.  This is the pattern the virtual
    platform stresses (CPU clock + analog ticker + ADC sampler chains), so it
    is the workload the kernel's slot-reuse/dispatch optimizations target.
    """
    fanout = 8

    def run():
        kernel = Kernel()
        signal = Signal(kernel, 0.0, "load")
        wakeups = {"count": 0}
        for _ in range(fanout):
            signal.changed.add_static_method(
                lambda: wakeups.__setitem__("count", wakeups["count"] + 1)
            )
        ticks = {"count": 0}

        def drive(now: float) -> None:
            ticks["count"] += 1
            signal.write(float(ticks["count"]))

        PeriodicTicker(kernel, "drive", PAPER_TIMESTEP, drive)
        kernel.run((STEPS // 2) * PAPER_TIMESTEP)
        return wakeups["count"]

    wakeups = benchmark(run)
    assert wakeups == (STEPS // 2) * fanout


def test_square_wave_source(benchmark):
    """Cost of evaluating the stimulus waveform (shared by every engine)."""
    wave = SquareWave(period=1e-3)

    def run():
        total = 0.0
        for index in range(STEPS):
            total += wave(index * PAPER_TIMESTEP)
        return total

    benchmark(run)
