"""Table II — longer isolated runs, speed-up relative to SystemC-AMS/ELN.

The Verilog-AMS baseline is removed (as in the paper) and the generated
models are compared against the manual ELN implementation on a longer
simulated time.  The abstraction-tool processing time reported alongside
Table II in the paper (7.67 s for RC20) is measured by
``bench_abstraction_cost.py``.
"""

from __future__ import annotations

import time

import pytest

from repro.sim import run_de_model, run_eln_model, run_python_model, run_tdf_model

COMPONENTS = ("2IN", "RC1", "RC20", "OA")

_ELN_CACHE: dict[str, float] = {}


def _eln_time(prepared, duration, timestep) -> float:
    if prepared.name not in _ELN_CACHE:
        start = time.perf_counter()
        run_eln_model(
            prepared.benchmark.circuit(),
            prepared.benchmark.stimuli,
            duration,
            timestep,
            [prepared.output],
        )
        _ELN_CACHE[prepared.name] = time.perf_counter() - start
    return _ELN_CACHE[prepared.name]


@pytest.mark.parametrize("component", COMPONENTS)
def test_sc_ams_eln_baseline(benchmark, prepared_models, table2_duration, timestep, component):
    """Row: the SystemC-AMS/ELN baseline of Table II."""
    prepared = prepared_models[component]
    benchmark.pedantic(
        lambda: run_eln_model(
            prepared.benchmark.circuit(),
            prepared.benchmark.stimuli,
            table2_duration,
            timestep,
            [prepared.output],
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["component"] = component
    benchmark.extra_info["target"] = "SC-AMS/ELN"
    benchmark.extra_info["speedup_vs_eln"] = 1.0


def _run_target(benchmark, prepared, duration, timestep, label, runner):
    baseline = _eln_time(prepared, duration, timestep)
    benchmark.pedantic(runner, rounds=1, iterations=1)
    elapsed = benchmark.stats.stats.mean
    speedup = baseline / elapsed if elapsed else float("inf")
    benchmark.extra_info["component"] = prepared.name
    benchmark.extra_info["target"] = label
    benchmark.extra_info["speedup_vs_eln"] = speedup


@pytest.mark.parametrize("component", COMPONENTS)
def test_sc_ams_tdf(benchmark, prepared_models, table2_duration, timestep, component):
    """Row: generated TDF model versus ELN (paper: 1.24x - 1.39x)."""
    prepared = prepared_models[component]
    _run_target(
        benchmark,
        prepared,
        table2_duration,
        timestep,
        "SC-AMS/TDF",
        lambda: run_tdf_model(prepared.model, prepared.benchmark.stimuli, table2_duration),
    )


@pytest.mark.parametrize("component", COMPONENTS)
def test_sc_de(benchmark, prepared_models, table2_duration, timestep, component):
    """Row: generated SystemC-DE model versus ELN (paper: 1.35x - 1.63x)."""
    prepared = prepared_models[component]
    _run_target(
        benchmark,
        prepared,
        table2_duration,
        timestep,
        "SC-DE",
        lambda: run_de_model(prepared.model, prepared.benchmark.stimuli, table2_duration),
    )


@pytest.mark.parametrize("component", COMPONENTS)
def test_cpp(benchmark, prepared_models, table2_duration, timestep, component):
    """Row: generated C++ model versus ELN (paper: 45x - 58x)."""
    prepared = prepared_models[component]
    _run_target(
        benchmark,
        prepared,
        table2_duration,
        timestep,
        "C++",
        lambda: run_python_model(prepared.model, prepared.benchmark.stimuli, table2_duration),
    )
    # The headline claim of the paper: removing the conservative
    # representation speeds the model up relative to ELN.  For RC20 the
    # generated flat Python code merely matches ELN's vectorised solve (see
    # EXPERIMENTS.md), so the assertion only requires a clear win on the
    # small components and rough parity on RC20.
    minimum = 0.5 if prepared.name == "RC20" else 1.0
    assert benchmark.extra_info["speedup_vs_eln"] > minimum
