#!/usr/bin/env python3
"""Record machine-readable performance baselines (``BENCH_*.json``).

Runs the standard :mod:`repro.perf.suite` workloads and writes one
``BENCH_<name>.json`` per benchmark into the baseline directory (default:
``benchmarks/baselines/``).  With ``--compare`` the suite is re-run and the
fresh numbers are checked against the last recorded baselines instead of
overwriting them; regressions beyond ``--tolerance`` are reported (and fail
the run under ``--strict``).

Baselines are wall-clock numbers of *this* machine — record and compare on
the same host.  Typical use::

    PYTHONPATH=src python benchmarks/record.py --smoke            # record
    PYTHONPATH=src python benchmarks/record.py --smoke --compare  # check
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.perf import BaselineStore  # noqa: E402
from repro.perf.suite import run_suite  # noqa: E402

DEFAULT_BASELINE_DIR = os.path.join(os.path.dirname(__file__), "baselines")


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized workloads (seconds, not minutes); measured the same way",
    )
    parser.add_argument(
        "--out",
        default=DEFAULT_BASELINE_DIR,
        help="baseline directory (default: benchmarks/baselines/)",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="compare against the recorded baselines instead of overwriting them",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="fraction of baseline performance a metric may lose before it is "
        "flagged (default 0.30, i.e. flag below 70%% retained)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when --compare finds regressions",
    )
    arguments = parser.parse_args(argv)
    store = BaselineStore(arguments.out)

    print(f"Running the perf suite ({'smoke' if arguments.smoke else 'full'} size)...")
    records = run_suite(smoke=arguments.smoke)
    for record in records:
        print(f"  {record.name}:")
        for metric, value in sorted(record.metrics.items()):
            print(f"    {metric:35s} {value:12.4g}")

    if arguments.compare:
        regressions, missing = store.compare(records, tolerance=arguments.tolerance)
        for name in missing:
            print(
                f"  note: no comparable baseline for {name!r} in "
                f"{store.directory} (never recorded, or recorded at a "
                f"different workload size)"
            )
        if regressions:
            print(f"\n{len(regressions)} regression(s) vs the last recorded baseline:")
            for regression in regressions:
                print(f"  REGRESSION {regression.describe()}")
            return 1 if arguments.strict else 0
        print("\nno regressions vs the last recorded baseline")
        return 0

    for record in records:
        path = store.save(record)
        print(f"  wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
