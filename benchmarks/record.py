#!/usr/bin/env python3
"""Record machine-readable performance baselines (``BENCH_*.json``).

Thin in-repo wrapper around :mod:`repro.perf.cli` (the installed
``repro-bench`` script) that defaults the baseline directory to
``benchmarks/baselines/``.  Typical use::

    PYTHONPATH=src python benchmarks/record.py --smoke            # record
    PYTHONPATH=src python benchmarks/record.py --smoke --compare  # check
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.perf.cli import main  # noqa: E402

DEFAULT_BASELINE_DIR = os.path.join(os.path.dirname(__file__), "baselines")


if __name__ == "__main__":
    raise SystemExit(main(default_out=DEFAULT_BASELINE_DIR))
