"""Table I — models in isolation: Verilog-AMS vs ELN / TDF / DE / C++.

Each benchmark measures the wall-clock simulation time of one target language
for one component, exactly one row of the paper's Table I.  The recorded
``extra_info`` carries the NRMSE against the Verilog-AMS reference and the
speed-up, so the full table can be reassembled from the pytest-benchmark
JSON output.
"""

from __future__ import annotations

import pytest

from repro.metrics import compare_traces
from repro.sim import (
    run_de_model,
    run_eln_model,
    run_python_model,
    run_reference_model,
    run_tdf_model,
)

COMPONENTS = ("2IN", "RC1", "RC20", "OA")

_REFERENCE_CACHE: dict[str, tuple] = {}


def _reference(prepared, duration, timestep):
    """Run (and cache) the Verilog-AMS reference for one component."""
    key = prepared.name
    if key not in _REFERENCE_CACHE:
        import time

        start = time.perf_counter()
        traces = run_reference_model(
            prepared.benchmark.circuit(),
            prepared.benchmark.stimuli,
            duration,
            timestep,
            [prepared.output],
        )
        _REFERENCE_CACHE[key] = (traces, time.perf_counter() - start)
    return _REFERENCE_CACHE[key]


@pytest.mark.parametrize("component", COMPONENTS)
def test_verilog_ams_reference(benchmark, prepared_models, table1_duration, timestep, component):
    """Row: the original Verilog-AMS description (the accuracy/speed baseline)."""
    prepared = prepared_models[component]
    result = benchmark.pedantic(
        lambda: run_reference_model(
            prepared.benchmark.circuit(),
            prepared.benchmark.stimuli,
            table1_duration,
            timestep,
            [prepared.output],
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["component"] = component
    benchmark.extra_info["target"] = "Verilog-AMS"
    benchmark.extra_info["nrmse"] = 0.0
    assert len(result[prepared.output]) > 0


def _run_target(benchmark, prepared, duration, timestep, label, runner):
    reference_traces, reference_time = _reference(prepared, duration, timestep)
    traces = benchmark.pedantic(runner, rounds=1, iterations=1)
    error = compare_traces(reference_traces[prepared.output], traces[prepared.output])
    elapsed = benchmark.stats.stats.mean
    benchmark.extra_info["component"] = prepared.name
    benchmark.extra_info["target"] = label
    benchmark.extra_info["nrmse"] = error
    benchmark.extra_info["speedup_vs_vams"] = reference_time / elapsed if elapsed else float("inf")
    # The abstracted models must stay faithful to the reference ("negligible
    # degradation of the output values of interest").
    assert error < 5e-2


@pytest.mark.parametrize("component", COMPONENTS)
def test_sc_ams_eln(benchmark, prepared_models, table1_duration, timestep, component):
    """Row: manual SystemC-AMS/ELN model (conservative solver per step)."""
    prepared = prepared_models[component]
    _run_target(
        benchmark,
        prepared,
        table1_duration,
        timestep,
        "SC-AMS/ELN",
        lambda: run_eln_model(
            prepared.benchmark.circuit(),
            prepared.benchmark.stimuli,
            table1_duration,
            timestep,
            [prepared.output],
        ),
    )


@pytest.mark.parametrize("component", COMPONENTS)
def test_sc_ams_tdf(benchmark, prepared_models, table1_duration, timestep, component):
    """Row: generated SystemC-AMS/TDF model."""
    prepared = prepared_models[component]
    _run_target(
        benchmark,
        prepared,
        table1_duration,
        timestep,
        "SC-AMS/TDF",
        lambda: run_tdf_model(prepared.model, prepared.benchmark.stimuli, table1_duration),
    )


@pytest.mark.parametrize("component", COMPONENTS)
def test_sc_de(benchmark, prepared_models, table1_duration, timestep, component):
    """Row: generated SystemC-DE model."""
    prepared = prepared_models[component]
    _run_target(
        benchmark,
        prepared,
        table1_duration,
        timestep,
        "SC-DE",
        lambda: run_de_model(prepared.model, prepared.benchmark.stimuli, table1_duration),
    )


@pytest.mark.parametrize("component", COMPONENTS)
def test_cpp(benchmark, prepared_models, table1_duration, timestep, component):
    """Row: generated plain C++ (executable Python) model — the fastest target."""
    prepared = prepared_models[component]
    _run_target(
        benchmark,
        prepared,
        table1_duration,
        timestep,
        "C++",
        lambda: run_python_model(prepared.model, prepared.benchmark.stimuli, table1_duration),
    )
