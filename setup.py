"""Legacy setup shim.

The execution environment has no ``wheel`` package available (offline), so
``pip install -e .`` falls back to this file via ``setup.py develop``.
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
